"""Complexity accounting: query, message, and time complexity.

The three measures the paper optimizes (Section 1.2):

- **Query complexity (Q)** — the maximum number of bits queried from
  the source by any *nonfaulty* peer.  The source is the single
  authority: every request is charged here at request time.
- **Message complexity (M)** — the total number of messages sent by
  nonfaulty peers.
- **Time complexity (T)** — virtual time until the last nonfaulty peer
  terminates.  Time-complexity measurements are meaningful under
  adversaries whose delays are normalized to at most one unit (the
  standard asynchronous-time convention); the collector just records
  raw virtual timestamps.
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class ComplexityReport:
    """Immutable summary of one run's complexity measures."""

    query_complexity: int
    total_query_bits: int
    message_complexity: int
    message_bits: int
    time_complexity: float
    per_peer_query_bits: dict[int, int] = field(default_factory=dict)
    per_peer_messages: dict[int, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"Q={self.query_complexity} bits/peer (total {self.total_query_bits}), "
                f"M={self.message_complexity} msgs ({self.message_bits} bits), "
                f"T={self.time_complexity:.2f}")


class MetricsCollector:
    """Accumulates per-peer counters during a run."""

    def __init__(self) -> None:
        self.query_bits: dict[int, int] = defaultdict(int)
        self.messages_sent: dict[int, int] = defaultdict(int)
        self.message_bits_sent: dict[int, int] = defaultdict(int)
        self.start_time: dict[int, float] = {}
        self.termination_time: dict[int, float] = {}

    # -- recording (called by source / network / runner) -----------------------

    def record_query(self, pid: int, bits: int) -> None:
        """Charge ``bits`` queried bits to peer ``pid``."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        self.query_bits[pid] += bits

    def record_message(self, pid: int, bits: int) -> None:
        """Charge one sent message of ``bits`` bits to peer ``pid``."""
        self.messages_sent[pid] += 1
        self.message_bits_sent[pid] += bits

    def record_messages(self, pid: int, count: int, bits_each: int) -> None:
        """Charge ``count`` equal-sized sends to ``pid`` in one update.

        Bulk companion to :meth:`record_message` for the scale path's
        grouped broadcasts; totals are identical to ``count`` scalar
        calls.
        """
        if count <= 0:
            return
        self.messages_sent[pid] += count
        self.message_bits_sent[pid] += count * bits_each

    def record_start(self, pid: int, time: float) -> None:
        """Record the virtual time peer ``pid`` began executing."""
        self.start_time[pid] = time

    def record_termination(self, pid: int, time: float) -> None:
        """Record the virtual time peer ``pid`` produced its output."""
        self.termination_time[pid] = time

    # -- reporting ------------------------------------------------------------

    def report(self, honest: Iterable[int]) -> ComplexityReport:
        """Summarize the run, restricted to the ``honest`` peer set.

        Faulty peers' queries and messages are excluded, matching the
        paper's definitions (Byzantine peers may "spend" arbitrarily).
        """
        honest = sorted(set(honest))
        per_query = {pid: self.query_bits.get(pid, 0) for pid in honest}
        per_msgs = {pid: self.messages_sent.get(pid, 0) for pid in honest}
        terminations = [self.termination_time[pid] for pid in honest
                        if pid in self.termination_time]
        starts = [self.start_time.get(pid, 0.0) for pid in honest]
        elapsed = (max(terminations) - min(starts)) if terminations else 0.0
        return ComplexityReport(
            query_complexity=max(per_query.values(), default=0),
            total_query_bits=sum(per_query.values()),
            message_complexity=sum(per_msgs.values()),
            message_bits=sum(self.message_bits_sent.get(pid, 0)
                             for pid in honest),
            time_complexity=elapsed,
            per_peer_query_bits=per_query,
            per_peer_messages=per_msgs,
        )

    def queried_bits_of(self, pid: int) -> int:
        """Deprecated accessor for one peer's query-bit count.

        .. deprecated::
            Read ``report(honest).per_peer_query_bits`` — or, for a
            finished run, :func:`repro.obs.schema.unified_metrics` —
            instead of poking at the collector's internal dicts.
            Scheduled for removal in the 2026.10 release.
        """
        warnings.warn(
            "MetricsCollector.queried_bits_of is deprecated; use "
            "report(...).per_peer_query_bits or "
            "repro.obs.schema.unified_metrics(result); scheduled for "
            "removal in the 2026.10 release",
            DeprecationWarning, stacklevel=2)
        return self.query_bits.get(pid, 0)


@dataclass
class RunStatus:
    """Liveness outcome for one peer at the end of a run."""

    pid: int
    terminated: bool
    crashed: bool
    byzantine: bool
    termination_time: Optional[float] = None
