"""The opt-in vectorized scale path: configuration and run context.

At paper-scale ``n`` the simulator's per-object, per-message style is
the right trade — readable, traceable, adversary-exact.  At
``n = 10^5`` the Python overhead of one scheduled event per delivery
dominates wall-clock.  The scale path keeps the *semantics* (every
adversary hook still fires once per destination, in the exact baseline
order) but collapses the *mechanics*:

* per-peer state moves into contiguous
  :class:`~repro.sim.peerstate.PeerStateArrays`,
* a broadcast schedules one event per run of equal-latency consecutive
  destinations instead of one per destination
  (:meth:`~repro.sim.network.Network.broadcast_message`),
* message tallies are applied per *span* of peers by a bulk sink
  (e.g. :class:`~repro.protocols.board.CommitteeBoard`),
* the kernel's event store switches to the
  :class:`~repro.sim.calqueue.CalendarQueue` above an event-count
  threshold (decided once, at kernel construction).

The path is **opt-in** (``REPRO_SCALE=1`` / ``Simulation(scale=...)`` /
``--scale``) and pinned bit-identical to the default engine at small
``n`` by the golden-trace battery run with the path forced on
(``tests/integration/test_scale_golden.py``).  It deliberately does
not participate in experiment identity: ``seed_for`` and the result
cache ignore it, exactly like ``workers=``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.sim.errors import ConfigurationError
from repro.sim.peerstate import PeerStateArrays, numpy_or_none, require_numpy

#: Opt-in flag: ``1``/``auto`` (numpy when available, else python),
#: ``numpy`` (require the extra), ``python`` (force the fallback),
#: ``0``/empty (off).
ENV_FLAG = "REPRO_SCALE"

#: Override for the calendar-queue crossover (expected events); ``0``
#: forces the calendar queue for every scale-mode run (the golden
#: battery uses this to pin ordering at small n).
ENV_THRESHOLD = "REPRO_SCALE_THRESHOLD"

#: Default expected-event count above which a scale-mode run selects
#: the calendar queue.  With roughly :data:`EVENTS_PER_PEER` baseline
#: events per peer this crosses over around n = 3-4 * 10^4 — measured
#: in docs/PERFORMANCE.md ("Scaling to 10^5 peers").
DEFAULT_CALENDAR_THRESHOLD = 200_000

#: Coarse per-peer event estimate (start, query wait, response
#: delivery, wake, terminate, slack) used only for queue selection.
EVENTS_PER_PEER = 6

_ON_VALUES = ("1", "auto", "on", "true", "yes")
_OFF_VALUES = ("", "0", "off", "false", "no", "none")


@dataclass(frozen=True)
class ScaleConfig:
    """Resolved scale-path settings for one run."""

    backend: str  # "numpy" | "python"
    calendar_threshold: int = DEFAULT_CALENDAR_THRESHOLD


def resolve_scale(explicit=None) -> Optional[ScaleConfig]:
    """Resolve the scale setting into a config, or ``None`` (off).

    ``explicit`` is the ``Simulation(scale=...)`` argument: ``None``
    defers to the :data:`ENV_FLAG` environment variable (how the CLI's
    ``--scale`` reaches pool workers), ``False`` forces off, ``True``
    means auto, and the strings accept the same grammar as the env var.
    """
    if explicit is None:
        explicit = os.environ.get(ENV_FLAG, "")
    if explicit is False:
        return None
    if explicit is True:
        explicit = "auto"
    name = str(explicit).strip().lower()
    if name in _OFF_VALUES:
        return None
    if name in _ON_VALUES:
        backend = "numpy" if numpy_or_none() is not None else "python"
    elif name == "numpy":
        require_numpy(f"{ENV_FLAG}=numpy")
        backend = "numpy"
    elif name == "python":
        backend = "python"
    else:
        raise ConfigurationError(
            f"unrecognized scale mode {explicit!r}; expected one of "
            f"1/auto, numpy, python, or 0/off")
    threshold = DEFAULT_CALENDAR_THRESHOLD
    raw = os.environ.get(ENV_THRESHOLD)
    if raw is not None:
        try:
            threshold = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{ENV_THRESHOLD} must be an integer, got {raw!r}")
    return ScaleConfig(backend=backend, calendar_threshold=threshold)


def use_calendar_queue(config: Optional[ScaleConfig], n: int) -> bool:
    """Queue selection, decided once per run at kernel construction:
    scale mode on *and* the expected event count clears the threshold.
    A run can therefore never cross between heap and calendar mid-way."""
    if config is None:
        return False
    return EVENTS_PER_PEER * n >= config.calendar_threshold


class ScaleContext:
    """Shared per-run scale state: arrays, bulk sinks, shared boards.

    One instance per :meth:`Simulation.run`, referenced from
    ``SimEnv.scale``; ``None`` there means the run is on the default
    engine and every scale hook is skipped.
    """

    def __init__(self, config: ScaleConfig, n: int, ell: int) -> None:
        self.config = config
        self.n = n
        self.ell = ell
        self.state = PeerStateArrays(n, ell, config.backend)
        #: ``message type -> bulk sink``: a broadcast of a registered
        #: type may be delivered to a whole span of peers as one event
        #: (the sink owns delivery semantics for that type; registering
        #: one asserts the protocol reads those messages only through
        #: its handler, never from the inbox).
        self.sinks: dict[type, object] = {}
        #: Shared per-run structures keyed by the protocol that owns
        #: them (e.g. the committee board).
        self.boards: dict[object, object] = {}

    def bulk_eligible(self, network) -> bool:
        """True when ``network`` may take the bulk broadcast path.

        Bulk grouping changes nothing observable only when no per-
        destination instrumentation or ordering feature is active:
        telemetry and tracing emit per delivery, FIFO links and size
        limits act per message.  Byzantine senders route through a
        corrupting proxy that lacks ``broadcast_message`` entirely and
        fall back to the exact per-destination loop.
        """
        return (getattr(network, "BULK_CAPABLE", False)
                and network.telemetry is None
                and network.trace is None
                and not network.fifo
                and network.message_size_limit is None)

    def committee_board(self, peer):
        """The run's shared :class:`~repro.protocols.board.CommitteeBoard`
        for ``peer``'s committee configuration, creating it on first
        use and registering ``peer`` with it."""
        from repro.protocols.board import CommitteeBoard
        from repro.protocols.byz_committee import CommitteeReport
        key = ("committee", peer.blocks.num_segments, peer.committee_size)
        board = self.boards.get(key)
        if board is None:
            board = CommitteeBoard(
                kernel=peer.env.kernel, n=self.n, t=peer.env.t,
                blocks=peer.blocks, committee_size=peer.committee_size,
                backend=self.config.backend)
            self.boards[key] = board
            self.sinks[CommitteeReport] = board
        board.register(peer)
        return board
