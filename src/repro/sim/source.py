"""The trusted external data source.

The source stores the ``ell``-bit input array ``X`` and answers
read-only queries ``Query(i) -> X[i]``.  Source-to-peer communication
is asynchronous like everything else: a query's response travels with
an adversary-chosen latency (the adversary may also withhold it until
quiescence).

Query accounting happens here and only here: the number of bits a peer
has queried is the number of distinct positions in all requests it has
issued (charged at request time — an in-flight query already counts, so
a peer cannot dodge the charge by crashing before the answer arrives).

The source is *trusted*: it never lies and never fails.  Byzantine
data sources exist only in the blockchain-oracle application layer
(:mod:`repro.oracle.feeds`), where each feed embeds its own honest or
corrupt :class:`DataSource`-like behaviour.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sim.messages import SOURCE_ID, SourceResponse
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.util.bitarrays import BitArray, canonical_indices, mask_to_set
from repro.util.validation import check_index, check_range


class DataSource:
    """Read-only bit array with per-peer query accounting."""

    def __init__(self, data: BitArray, metrics: MetricsCollector,
                 network: Network, adversary) -> None:
        self.data = data
        self.metrics = metrics
        self.network = network
        self.adversary = adversary
        self._requests_served = 0
        #: Which positions each peer has queried, as one bitmask per
        #: peer (bit ``i`` set = position ``i`` was queried).  Exposed
        #: as plain sets through :attr:`queried_indices`.
        self._queried_masks: dict[int, int] = {}
        #: Scale path: the run's shared
        #: :class:`~repro.sim.peerstate.PeerStateArrays`, which then
        #: holds the query masks contiguously instead of in the dict
        #: above (see :meth:`bind_scale_state`).
        self._scale_state = None
        #: Resolved telemetry backend, or ``None`` when disabled (the
        #: runner wires this after construction).
        self.telemetry = None

    def bind_scale_state(self, state) -> None:
        """Route query-mask accounting into the scale path's
        struct-of-arrays store (the runner calls this once per
        scale-mode run, before any peer starts)."""
        self._scale_state = state

    def __len__(self) -> int:
        return len(self.data)

    @property
    def requests_served(self) -> int:
        """Total number of query requests answered so far."""
        return self._requests_served

    @property
    def queried_indices(self) -> dict[int, set[int]]:
        """Which positions each peer has queried (the lower-bound
        constructions pick their target bit outside this set).

        Materialized fresh from the per-peer bitmasks on each access;
        mutating the returned sets does not affect the accounting.
        """
        state = self._scale_state
        if state is not None:
            return {pid: mask_to_set(state.query_masks[pid])
                    for pid in range(state.n) if state.query_touched[pid]}
        return {pid: mask_to_set(mask)
                for pid, mask in self._queried_masks.items()}

    def _record_query(self, pid: int, unique: Sequence[int],
                      mask: int) -> None:
        """Charge ``pid`` for one request covering ``unique``."""
        self.metrics.record_query(pid, len(unique))
        state = self._scale_state
        if state is not None:
            state.query_masks[pid] |= mask
            state.query_touched[pid] = 1
        else:
            self._queried_masks[pid] = self._queried_masks.get(pid, 0) | mask
        self._requests_served += 1
        if self.telemetry is not None:
            self.telemetry.emit("query", {
                "t": self.network.kernel.now, "peer": pid,
                "bits": len(unique)})
            self.telemetry.add("queries", 1, {"peer": pid})

    # -- querying -----------------------------------------------------------

    def request_bits(self, pid: int, request_id: int,
                     indices: Sequence[int]) -> None:
        """Serve a query for the given bit ``indices`` from peer ``pid``.

        The response is a single :class:`SourceResponse` delivered with
        adversary-chosen latency.  Duplicate indices within one request
        are collapsed (and charged once); re-querying a bit across
        requests is charged again — the model counts queries, not
        distinct learned bits, and the protocols avoid re-queries
        themselves.
        """
        unique, mask = canonical_indices(indices, len(self.data))
        self._record_query(pid, unique, mask)
        values = dict(zip(unique, self.data.get_many(unique)))
        response = SourceResponse(sender=SOURCE_ID, request_id=request_id,
                                  values=values)
        latency = self.adversary.query_latency(pid, self.network.kernel.now)
        self.network.deliver_direct(pid, response, latency)

    def request_segment(self, pid: int, request_id: int,
                        lo: int, hi: int) -> None:
        """Serve a query for the contiguous segment ``[lo, hi)``."""
        check_range("segment query", lo, hi, len(self.data))
        self.request_bits(pid, request_id, range(lo, hi))

    #: A lone trusted source is a source set of one.  The attribute and
    #: the delegating method below give protocols one uniform querying
    #: surface (:class:`~repro.sim.sourceset.SourceSet` generalizes
    #: both), so cross-validation code with ``q = 1`` runs unchanged
    #: against the plain single source.
    k = 1

    def request_bits_from(self, source_id: int, pid: int, request_id: int,
                          indices: Sequence[int]) -> None:
        """Endpoint-addressed querying; a single source only has 0."""
        if source_id != 0:
            raise ValueError(f"single source has only endpoint 0, "
                             f"got {source_id}")
        self.request_bits(pid, request_id, indices)

    # -- test/bench conveniences (no accounting side effects) ----------------

    def peek(self, index: int) -> int:
        """Read a bit without charging anyone (test helper only)."""
        return self.data[index]

    def peek_segment(self, lo: int, hi: int) -> str:
        """Read a segment without charging anyone (test helper only)."""
        return self.data.segment(lo, hi)


class MutableDataSource(DataSource):
    """A source whose contents change *during* the execution.

    The paper's closing open problem: all its protocols assume static
    data — two honest peers querying the same position at different
    times must see the same bit.  This source deliberately violates
    that assumption (bit flips at scheduled virtual times) so the test
    suite can *demonstrate* the failure mode the open problem is about:
    peers download inconsistent snapshots, and "the" correct output
    stops being well-defined.

    Use via :func:`mutable_source_factory` as a ``source_factory`` for
    :class:`~repro.sim.runner.Simulation`.
    """

    def __init__(self, data, metrics, network, adversary, *,
                 mutations: Sequence[tuple[float, int]] = ()) -> None:
        super().__init__(data, metrics, network, adversary)
        self.mutations = list(mutations)
        self.applied_mutations: list[tuple[float, int]] = []
        for time, index in self.mutations:
            check_index("mutation index", index, len(self.data))
            network.kernel.schedule(time,
                                    lambda i=index: self._flip(i),
                                    kind=f"mutate:{index}")

    def _flip(self, index: int) -> None:
        self.data[index] = 1 - self.data[index]
        self.applied_mutations.append((self.network.kernel.now, index))

    def request_bits(self, pid: int, request_id: int, indices) -> None:
        """Read *when the query reaches the source*, not at send time.

        The static source snapshots values immediately (it makes no
        difference there); with mutable data the timing is the whole
        point: the request travels for half the round-trip latency,
        the array is read at arrival, and the response travels back.
        """
        unique, mask = canonical_indices(indices, len(self.data))
        self._record_query(pid, unique, mask)
        latency = self.adversary.query_latency(pid, self.network.kernel.now)
        if not isinstance(latency, (int, float)):
            # Withheld query: snapshot now, park the response.
            values = dict(zip(unique, self.data.get_many(unique)))
            response = SourceResponse(sender=SOURCE_ID,
                                      request_id=request_id, values=values)
            self.network.deliver_direct(pid, response, latency)
            return

        def read_and_respond() -> None:
            values = dict(zip(unique, self.data.get_many(unique)))
            response = SourceResponse(sender=SOURCE_ID,
                                      request_id=request_id, values=values)
            self.network.deliver_direct(pid, response, latency / 2.0)
        self.network.kernel.schedule(latency / 2.0, read_and_respond,
                                     kind=f"source-read:{pid}")


def mutable_source_factory(mutations: Sequence[tuple[float, int]]):
    """Build a ``source_factory`` that flips bits at scheduled times."""
    def make(data, metrics, network, adversary):
        return MutableDataSource(data, metrics, network, adversary,
                                 mutations=mutations)
    return make


def ground_truth(source: DataSource) -> BitArray:
    """Return an independent copy of the source array for verification."""
    return source.data.copy()


def indices_are_valid(source: DataSource, indices: Iterable[int]) -> bool:
    """True when every index is a legal query position."""
    length = len(source)
    return all(isinstance(i, int) and 0 <= i < length for i in indices)
