"""Structured run traces (optional).

Tests that assert *orderings* — e.g. "the victim peer terminated before
any withheld message was released" in the lower-bound constructions —
need more than end-of-run totals.  A :class:`TraceRecorder` attached to
a simulation records one flat record per interesting occurrence; tests
filter them with :meth:`TraceRecorder.select`.

Tracing is off by default (``Simulation(trace=False)``); it costs one
tuple append per event when enabled.

Traces are the in-memory, test-facing view of a run.  The durable,
tool-facing view is the telemetry event stream
(:mod:`repro.obs.schema`): :func:`repro.obs.export.events_from_result`
converts a recorder's records into schema events, so anything captured
here can be written to JSONL and inspected with ``repro trace``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str
    details: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


@dataclass
class TraceRecorder:
    """Append-only log of :class:`TraceRecord` entries."""

    records: list[TraceRecord] = field(default_factory=list)

    def record(self, time: float, kind: str, **details: Any) -> None:
        """Append one record."""
        self.records.append(TraceRecord(time, kind, details))

    def select(self, kind: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None
               ) -> list[TraceRecord]:
        """Return records matching ``kind`` and ``predicate``."""
        found = self.records
        if kind is not None:
            found = [record for record in found if record.kind == kind]
        if predicate is not None:
            found = [record for record in found if predicate(record)]
        return found

    def first(self, kind: str) -> Optional[TraceRecord]:
        """Return the earliest record of ``kind``, if any."""
        matching = self.select(kind)
        return matching[0] if matching else None

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Return the latest record of ``kind``, if any."""
        matching = self.select(kind)
        return matching[-1] if matching else None

    def counts(self) -> Counter:
        """Record counts by kind — a run's shape at a glance."""
        return Counter(record.kind for record in self.records)

    def __len__(self) -> int:
        return len(self.records)
