"""Generator-coroutine process model.

A process is written as a Python generator: its :meth:`Process.body`
method ``yield``s *wait requests* and the kernel resumes it when the
request is satisfied.  This maps one-to-one onto the paper's
description of a peer's local cycle — "send some queries and messages,
then wait to receive messages, adaptively deciding after each received
message whether to keep waiting" — while keeping protocol code linear
and readable (no callback pyramids).

Two wait requests exist:

- ``yield WaitUntil(predicate, description)`` parks the process until
  ``predicate()`` becomes true.  The kernel re-evaluates the predicate
  whenever the process is *notified* (a message or query response was
  delivered to it), which is exactly the adaptive waiting the model
  allows.
- ``yield Sleep(duration)`` resumes the process after ``duration``
  units of virtual time.  Protocol code never uses this (local
  computation takes zero time in the model); it exists for workload
  drivers and tests.

Local computation between yields takes zero virtual time, matching the
model's assumption.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional


class WaitRequest:
    """Base class for the values a process may ``yield``."""

    __slots__ = ()


class WaitUntil(WaitRequest):
    """Park until ``predicate()`` is true.

    The predicate must be a pure function of the process's own local
    state (inbox contents, counters) — the model gives a peer no way to
    observe another peer's memory, and the kernel only re-checks the
    predicate when *this* process receives something.
    """

    __slots__ = ("predicate", "description")

    def __init__(self, predicate: Callable[[], bool],
                 description: str = "condition") -> None:
        self.predicate = predicate
        self.description = description

    def __repr__(self) -> str:
        return f"WaitUntil({self.description})"


class Sleep(WaitRequest):
    """Resume after ``duration`` units of virtual time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep({self.duration})"


class Process:
    """A schedulable activity with a generator body.

    Subclasses implement :meth:`body`.  The kernel drives the generator
    and manages the waiting state; subclasses interact with the kernel
    only by yielding :class:`WaitRequest` objects.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.finished = False
        self.halted = False  # set externally (crash); never resumed again
        #: Whether this process must make progress for the run to be
        #: considered live.  Honest peers are essential; Byzantine
        #: shells set this False — an attacker that waits forever is
        #: the adversary's business, not a deadlock.
        self.essential = True
        self._generator: Optional[Iterator[WaitRequest]] = None
        self._waiting: Optional[WaitUntil] = None
        self._wake_scheduled = False
        # Cached resumption closures + event labels, filled in by
        # Kernel.register so repeated sleeps/wakes reuse one callable
        # instead of allocating a lambda per scheduled step.
        self._resume: Optional[Callable[[], None]] = None
        self._wake_cb: Optional[Callable[[], None]] = None
        self._sleep_kind = f"sleep:{name}"
        self._wake_kind = f"wake:{name}"

    def body(self) -> Iterator[WaitRequest]:
        """The process logic, as a generator of wait requests."""
        raise NotImplementedError

    # -- kernel-facing state ---------------------------------------------------

    @property
    def live(self) -> bool:
        """True while the process can still take steps."""
        return not (self.finished or self.halted)

    @property
    def waiting_on(self) -> Optional[str]:
        """Human-readable description of the current wait, if any."""
        return self._waiting.description if self._waiting else None

    def halt(self) -> None:
        """Stop the process permanently (used for crash faults).

        A halted process is never resumed; wait requests it had pending
        are abandoned.  In-flight messages it already sent are *not*
        recalled — matching the model, where a crash can occur after
        some of a batch of sends have gone out.
        """
        self.halted = True
        self._waiting = None

    def __repr__(self) -> str:
        state = ("finished" if self.finished
                 else "halted" if self.halted
                 else f"waiting:{self.waiting_on}" if self._waiting
                 else "runnable")
        return f"<{type(self).__name__} {self.name} [{state}]>"
