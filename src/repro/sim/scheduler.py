"""The simulation kernel: virtual clock, event heap, process stepping.

The kernel owns the virtual clock and a binary heap of events ordered
``(time, seq)`` (see :mod:`repro.sim.events`).  Processes (peers,
Byzantine shells, workload drivers) are registered with the kernel and
driven through their generator bodies; the network and the data source
schedule delivery events.

Quiescence.  The model (Section 3.1 of the paper) compels the adversary
to release withheld messages once the system reaches *quiescence* — all
honest peers parked waiting for messages, nothing in flight.  The
kernel supports this through an ``on_quiescence`` callback: when the
heap drains, the callback gets a chance to inject new events (the
network uses it to flush withheld messages).  If it injects nothing and
live processes are still waiting, the kernel raises
:class:`~repro.sim.errors.DeadlockError` naming the stuck processes —
a correct protocol run never ends that way.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.calqueue import CalendarQueue
from repro.sim.errors import BudgetExceeded, DeadlockError
from repro.sim.events import Event
from repro.sim.process import Process, Sleep, WaitUntil

#: Default ceiling on processed events; generous for every test and bench,
#: small enough to catch accidental infinite message loops quickly.
DEFAULT_MAX_EVENTS = 5_000_000


class Kernel:
    """Event loop + process scheduler for one simulation run.

    The event store is chosen **once**, at construction: the default
    binary heap, or (``use_calendar=True``) the bucketed
    :class:`~repro.sim.calqueue.CalendarQueue` the scale path selects
    for six-figure event counts.  Both order events by ``(time, seq)``
    exactly, and a run can never switch stores mid-way — the
    heap↔calendar crossover is therefore incapable of perturbing a
    trace (pinned by ``tests/integration/test_scale_golden.py``).
    """

    def __init__(self, *, use_calendar: bool = False) -> None:
        self.now = 0.0
        #: Heap of ``(time, seq, action, kind)`` tuples; ``seq`` is
        #: unique, so C-level tuple comparison settles every heap swap
        #: without ever reaching the ``action`` slot.
        self._heap: list[tuple[float, int, Callable[[], None], str]] = []
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue() if use_calendar else None)
        #: Which event store this kernel runs on ("heap" | "calendar");
        #: reported by the ``scheduler_stats`` telemetry event.
        self.queue_kind = "calendar" if use_calendar else "heap"
        #: High-water mark of the event queue depth (O(1) to maintain:
        #: one comparison per push).
        self.max_depth = 0
        self._seq = 0
        self._processes: list[Process] = []
        self.events_processed = 0
        self.on_quiescence: Optional[Callable[[], bool]] = None
        #: Resolved telemetry backend, or ``None`` when disabled (the
        #: runner wires this).  Only the wake/first-step paths emit —
        #: the main event loop stays untouched, so a disabled backend
        #: costs the hot path nothing at all.
        self.telemetry = None

    # -- event scheduling --------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None],
                 kind: str = "event") -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        entry = (self.now + delay, self._seq, action, kind)
        if self._cal is None:
            heapq.heappush(self._heap, entry)
            depth = len(self._heap)
        else:
            self._cal.push(entry)
            depth = len(self._cal)
        self._seq += 1
        if depth > self.max_depth:
            self.max_depth = depth

    def __len__(self) -> int:
        """Number of pending events — O(1) on both stores."""
        return len(self._heap) if self._cal is None else len(self._cal)

    def peek(self) -> Optional[tuple]:
        """The next ``(time, seq, action, kind)`` entry without popping
        it, or ``None`` when the queue is empty — O(1) on both stores
        (the calendar queue caches its minimum)."""
        if self._cal is None:
            return self._heap[0] if self._heap else None
        return self._cal.peek()

    # -- process management --------------------------------------------------

    def register(self, process: Process, start_at: float = 0.0) -> None:
        """Register ``process`` and schedule its first step.

        ``start_at`` is an absolute virtual time; the adversary may
        stagger peer starts (the model does not assume a simultaneous
        start).

        Resumption closures are built once here and reused for every
        subsequent sleep/wake of the process, so stepping a process does
        not allocate a fresh lambda per event.
        """
        if start_at < self.now:
            raise ValueError(
                f"start_at={start_at} is in the past (now={self.now})")
        self._processes.append(process)
        process._resume = lambda: self._advance(process)
        process._wake_cb = lambda: self._wake(process)
        process._sleep_kind = f"sleep:{process.name}"
        process._wake_kind = f"wake:{process.name}"
        self.schedule(start_at - self.now, process._resume,
                      kind=f"start:{process.name}")

    def notify(self, process: Process) -> None:
        """Re-evaluate ``process``'s wait predicate after new input.

        Called by the network/source when something is delivered to the
        process.  If the predicate is now satisfied, resumption is
        scheduled as a zero-delay event so that all deliveries carrying
        the same timestamp land in the inbox before protocol code runs.
        """
        if not process.live or process._waiting is None:
            return
        if process._wake_scheduled:
            return
        if process._waiting.predicate():
            process._wake_scheduled = True
            self.schedule(0.0, process._wake_cb, kind=process._wake_kind)

    def _wake(self, process: Process) -> None:
        process._wake_scheduled = False
        if not process.live or process._waiting is None:
            return
        # The predicate may have been invalidated between notification
        # and wake-up only if protocol code mutates shared state; local
        # predicates are monotone in practice, but re-check regardless.
        if process._waiting.predicate():
            process._waiting = None
            if self.telemetry is not None:
                self.telemetry.emit("wake", {"t": self.now,
                                             "proc": process.name})
            self._advance(process)

    def _advance(self, process: Process) -> None:
        """Run ``process`` until it parks, sleeps, or finishes."""
        if not process.live:
            return
        if process._resume is None:
            # Driven without register() (tests do this); build the
            # cached closure on first contact instead.
            process._resume = lambda: self._advance(process)
        if process._generator is None:
            if self.telemetry is not None:
                self.telemetry.emit("proc_start", {"t": self.now,
                                                   "proc": process.name})
            generator = process.body()
            if generator is None:
                # A body with no yield (fire-and-forget attackers) runs
                # to completion inside the body() call itself.
                process.finished = True
                return
            process._generator = generator
        generator = process._generator
        while True:
            try:
                request = next(generator)
            except StopIteration:
                process.finished = True
                return
            if isinstance(request, Sleep):
                self.schedule(request.duration, process._resume,
                              kind=process._sleep_kind)
                return
            if isinstance(request, WaitUntil):
                if request.predicate():
                    continue
                process._waiting = request
                return
            raise TypeError(
                f"{process.name} yielded {request!r}; processes may only "
                f"yield WaitUntil or Sleep")

    # -- the main loop --------------------------------------------------------

    def run(self, *, max_events: int = DEFAULT_MAX_EVENTS,
            max_time: Optional[float] = None) -> None:
        """Process events until the system finishes or deadlocks.

        Raises:
            BudgetExceeded: the event or time budget ran out (this
                indicates a protocol bug, e.g. a message loop).
            DeadlockError: no events remain, the quiescence hook
                produced nothing, and live processes are still waiting.
        """
        if self._cal is not None:
            self._run_calendar(max_events=max_events, max_time=max_time)
            return
        heap = self._heap
        heappop = heapq.heappop
        while True:
            if not heap:
                if self.on_quiescence is not None and self.on_quiescence():
                    continue
                self._check_deadlock()
                return
            time, seq, action, kind = heappop(heap)
            if max_time is not None and time > max_time:
                raise BudgetExceeded(
                    f"virtual time budget {max_time} exceeded at "
                    f"{Event(time, seq, action, kind)!r}")
            self.now = time
            self.events_processed += 1
            if self.events_processed > max_events:
                raise BudgetExceeded(
                    f"event budget {max_events} exceeded at "
                    f"{Event(time, seq, action, kind)!r}")
            action()

    def _run_calendar(self, *, max_events: int,
                      max_time: Optional[float]) -> None:
        """The :meth:`run` loop over the calendar-queue store.  Kept as
        a verbatim twin of the heap loop so the default path pays no
        per-event branch for a store it never uses."""
        cal = self._cal
        while True:
            if not cal:
                if self.on_quiescence is not None and self.on_quiescence():
                    continue
                self._check_deadlock()
                return
            time, seq, action, kind = cal.pop()
            if max_time is not None and time > max_time:
                raise BudgetExceeded(
                    f"virtual time budget {max_time} exceeded at "
                    f"{Event(time, seq, action, kind)!r}")
            self.now = time
            self.events_processed += 1
            if self.events_processed > max_events:
                raise BudgetExceeded(
                    f"event budget {max_events} exceeded at "
                    f"{Event(time, seq, action, kind)!r}")
            action()

    def _check_deadlock(self) -> None:
        stuck = [(process.name, process.waiting_on or "first step")
                 for process in self._processes
                 if process.live and process.essential
                 and process._waiting is not None]
        if stuck:
            raise DeadlockError(stuck)

    @property
    def live_processes(self) -> list[Process]:
        """Processes that are neither finished nor halted."""
        return [process for process in self._processes if process.live]
