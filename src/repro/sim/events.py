"""Event representation and deterministic ordering.

The kernel's event queue is a binary heap of :class:`Event` objects
ordered by ``(time, seq)``.  ``seq`` is a global monotone counter
assigned at scheduling time, which makes simultaneous events fire in
scheduling order — so a run is a pure function of the configuration and
the seed, with no dependence on hash ordering or iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled action.

    Attributes:
        time: virtual time at which the action fires.
        seq: tie-breaker; lower ``seq`` fires first at equal times.
        action: zero-argument callable executed when the event fires.
        kind: short label used by traces and error messages.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    kind: str = field(compare=False, default="event")

    def __repr__(self) -> str:
        return f"Event(t={self.time:.4f}, seq={self.seq}, kind={self.kind})"
