"""Event representation and deterministic ordering.

The kernel's event queue is a binary heap ordered by ``(time, seq)``.
``seq`` is a global monotone counter assigned at scheduling time, which
makes simultaneous events fire in scheduling order — so a run is a pure
function of the configuration and the seed, with no dependence on hash
ordering or iteration order.

For speed the kernel stores heap entries as plain ``(time, seq,
action, kind)`` tuples (tuple comparison is C-level, and ``seq`` is
unique so comparison never reaches the ``action`` slot).  The
:class:`Event` class here is the reflective view of one entry — used
for error messages, traces, and tests — with hand-written comparisons
matching the tuple order exactly.
"""

from __future__ import annotations

from typing import Callable


class Event:
    """A single scheduled action.

    Ordering and equality consider only ``(time, seq)``; ``action`` and
    ``kind`` are payload.

    Attributes:
        time: virtual time at which the action fires.
        seq: tie-breaker; lower ``seq`` fires first at equal times.
        action: zero-argument callable executed when the event fires.
        kind: short label used by traces and error messages.
    """

    __slots__ = ("time", "seq", "action", "kind")

    def __init__(self, time: float, seq: int,
                 action: Callable[[], None], kind: str = "event") -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.kind = kind

    def _key(self) -> tuple[float, int]:
        return (self.time, self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    # Mutable container semantics, like the dataclass it replaced.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"Event(t={self.time:.4f}, seq={self.seq}, kind={self.kind})"
