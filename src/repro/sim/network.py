"""The complete peer-to-peer network with adversary-controlled delays.

Every ``send`` consults the adversary, which returns either a finite
latency (the message is scheduled for delivery) or the
:data:`WITHHOLD` sentinel (the message is parked in the withheld pool).
Withheld messages model the adversary's power to delay "by any finite
amount": they are flushed when the system reaches quiescence — the
point at which, per the model discussion in Section 3.1, the adversary
is *compelled* to release delayed messages because every honest peer is
parked waiting.

Crash faults interact with sending: the adversary may crash a sender
*between individual sends of a batch* (the model explicitly allows a
peer to crash "after it has already sent some, but perhaps not all, of
the messages").  The network therefore asks the adversary for
permission before each send; a refusal halts the sender on the spot and
drops that message and all later ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.sim.errors import ProtocolViolation
from repro.sim.messages import Message
from repro.sim.metrics import MetricsCollector
from repro.sim.scheduler import Kernel
from repro.topology.routing import Router


class _Withhold:
    """Sentinel type for adversary-withheld deliveries."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "WITHHOLD"


#: Returned by an adversary's latency methods to park a delivery until
#: quiescence (or until the adversary chooses to release it).
WITHHOLD = _Withhold()

Latency = "float | _Withhold"


@runtime_checkable
class Receiver(Protocol):
    """Anything that can be attached to the network as a peer."""

    pid: int

    def deliver(self, message: Message) -> None:
        """Accept a delivered message (called at delivery time)."""

    @property
    def live(self) -> bool:
        """False once the process crashed or finished."""


@dataclass
class WithheldMessage:
    """One delivery the adversary is currently sitting on.

    ``resume`` is set only for withheld *relay hops* on a routed
    topology: releasing the entry must land the message at the hop's
    destination and continue the route, not final-deliver it there.
    """

    sender: int
    destination: int
    message: Message
    sent_at: float
    resume: Optional[object] = None


class Network:
    """Complete network over ``n`` peers with per-message adversary delays."""

    #: Class marker checked by the scale path: bulk broadcasts require
    #: the real network.  The Byzantine corrupting proxy lacks the
    #: marker, so wrapped senders fall back to exact per-destination
    #: sends.
    BULK_CAPABLE = True

    def __init__(self, kernel: Kernel, metrics: MetricsCollector,
                 adversary, message_size_limit: Optional[int] = None,
                 packetize: bool = False, fifo: bool = False,
                 topology=None, route_seed: int = 0) -> None:
        self.kernel = kernel
        self.metrics = metrics
        self.adversary = adversary
        self.message_size_limit = message_size_limit
        #: With packetize=True a message of ``k * b`` bits travels as
        #: ``k`` back-to-back packets: its delivery latency is
        #: multiplied by ``ceil(size / b)`` instead of being rejected.
        #: This models the paper's ``X / b`` transmission-time terms
        #: (e.g. the long responses in Theorem 2.13's analysis).
        self.packetize = packetize
        #: With fifo=True no message may overtake an earlier message on
        #: the same directed link: a delivery is pushed just past the
        #: link's previous delivery if the adversary's latency would
        #: reorder them.  The base model is non-FIFO (the default);
        #: the option exists because several classical arguments (e.g.
        #: "receiving a phase-2 message implies the phase-1 message
        #: arrived", Algorithm 1's completion case) become exact under
        #: FIFO links.  Withheld messages released at quiescence bypass
        #: the ordering (they are the adversary's to sequence).
        self.fifo = fifo
        #: Peer-to-peer connectivity.  ``None`` is the model's complete
        #: graph: every pair is one hop and the code path is
        #: byte-identical to the pre-topology engine.  A sparse
        #: :class:`~repro.topology.Topology` routes non-adjacent pairs
        #: hop by hop through a seeded shortest-path relay; each hop
        #: draws its own adversary latency and is charged as one
        #: message to the relaying peer.  The external data source is
        #: *not* part of the graph — queries stay direct, so Q is a
        #: topology-independent measure (only T and M degrade).
        self.topology = topology
        self._router = None
        if topology is not None and not topology.is_complete:
            self._router = Router(topology, seed=route_seed)
            #: Instance shadow of the class marker: the bulk span path
            #: assumes one-hop delivery to a contiguous pid span, so
            #: the scale path degrades to exact per-edge sends on any
            #: routed topology.
            self.BULK_CAPABLE = False
        self._receivers: dict[int, Receiver] = {}
        self._withheld: list[WithheldMessage] = []
        self._last_delivery: dict[tuple[int, int], float] = {}
        #: Optional TraceRecorder; when set, every send/delivery is
        #: recorded (wired by the runner when tracing is enabled).
        self.trace = None
        #: Resolved telemetry backend, or ``None`` when disabled (the
        #: runner wires this alongside ``trace``).
        self.telemetry = None
        kernel.on_quiescence = self._flush_withheld

    # -- wiring ---------------------------------------------------------------

    def attach(self, receiver: Receiver) -> None:
        """Register ``receiver`` under its ``pid``."""
        if receiver.pid in self._receivers:
            raise ValueError(f"peer {receiver.pid} attached twice")
        self._receivers[receiver.pid] = receiver

    def receiver(self, pid: int) -> Receiver:
        """Look up the attached receiver for ``pid``."""
        return self._receivers[pid]

    @property
    def withheld_count(self) -> int:
        """Number of deliveries currently parked by the adversary."""
        return len(self._withheld)

    # -- sending ----------------------------------------------------------------

    def send(self, sender_pid: int, destination: int, message: Message,
             *, sender_cycle: int = 0, honest: bool = True) -> bool:
        """Send ``message`` from ``sender_pid`` to ``destination``.

        Returns True if the message left the sender (it may still be
        withheld/delayed arbitrarily), False if the sender was crashed
        by the adversary before this send.
        """
        if destination not in self._receivers:
            raise ValueError(f"unknown destination peer {destination}")
        sender = self._receivers.get(sender_pid)
        if sender is not None and not sender.live:
            return False
        if not self.adversary.permit_send(sender_pid, destination, message,
                                          self.kernel.now):
            # Crash mid-batch: the adversary killed the sender before
            # this particular message went out.
            if self.telemetry is not None:
                self.telemetry.emit("crash_send", {
                    "t": self.kernel.now, "peer": sender_pid,
                    "dst": destination})
            return False
        transformed = self.adversary.transform_message(
            sender_pid, destination, message, self.kernel.now, sender_cycle)
        if transformed is not message and self.telemetry is not None:
            self.telemetry.emit("transform", {
                "t": self.kernel.now, "src": sender_pid,
                "dst": destination, "type": type(message).__name__})
        if transformed is None:
            return True  # dynamically-corrupted sender: message eaten
        message = transformed
        size = message.size_bits()
        if honest and self.message_size_limit is not None \
                and size > self.message_size_limit and not self.packetize:
            raise ProtocolViolation(
                f"peer {sender_pid} sent a {size}-bit message; the limit "
                f"is {self.message_size_limit} bits")
        if honest:
            self.metrics.record_message(sender_pid, size)
        if self.trace is not None:
            self.trace.record(self.kernel.now, "send",
                              sender=sender_pid, destination=destination,
                              message=type(message).__name__, bits=size,
                              honest=honest)
        if self.telemetry is not None:
            self.telemetry.emit("send", {
                "t": self.kernel.now, "src": sender_pid,
                "dst": destination, "type": type(message).__name__,
                "bits": size, "honest": honest})
        if self._router is not None:
            hops = self._router.path(sender_pid, destination)
            if len(hops) > 2:
                self._forward(hops, 0, message, sender_cycle, honest)
                return True
        latency = self.adversary.message_latency(
            sender_pid, destination, message, self.kernel.now, sender_cycle)
        if (self.packetize and self.message_size_limit is not None
                and isinstance(latency, (int, float))):
            packets = -(-size // self.message_size_limit)
            latency = float(latency) * packets
        self._dispatch(sender_pid, destination, message, latency)
        return True

    # -- topology-routed relay ---------------------------------------------

    def _forward(self, hops: list, index: int, message: Message,
                 sender_cycle: int, honest: bool) -> None:
        """Dispatch hop ``index`` of a routed delivery.

        Send-side adversary hooks (``permit_send``,
        ``transform_message``) fired once, at the origin; the relay is
        a transport service of the network layer, so what the
        adversary keeps for every hop is its scheduling power — each
        hop draws its own ``message_latency`` and may be withheld
        independently (a withheld hop released at quiescence lands at
        the hop's destination and the route continues from there, so
        the adversary can stall a route one quiescence per hop but
        never forever).
        """
        hop_src, hop_dst = hops[index], hops[index + 1]
        latency = self.adversary.message_latency(
            hop_src, hop_dst, message, self.kernel.now, sender_cycle)
        if isinstance(latency, _Withhold):
            if self.telemetry is not None:
                self.telemetry.emit("withhold", {
                    "t": self.kernel.now, "src": hop_src,
                    "dst": hop_dst, "type": type(message).__name__})
            self._withheld.append(WithheldMessage(
                hop_src, hop_dst, message, self.kernel.now,
                resume=lambda: self._arrive(hops, index, message,
                                            sender_cycle, honest)))
            return
        if not isinstance(latency, (int, float)) or latency < 0:
            raise ValueError(
                f"adversary returned invalid latency {latency!r}")
        delay = float(latency)
        if (self.packetize and self.message_size_limit is not None):
            delay *= -(-message.size_bits() // self.message_size_limit)
        if self.fifo:
            link = (hop_src, hop_dst)
            earliest = self._last_delivery.get(link, 0.0) + 1e-9
            arrival = max(self.kernel.now + delay, earliest)
            self._last_delivery[link] = arrival
            delay = arrival - self.kernel.now
        final = index + 2 == len(hops)
        self.kernel.schedule(
            delay,
            lambda: self._arrive(hops, index, message, sender_cycle, honest),
            kind=(f"deliver:{hop_src}->{hop_dst}" if final
                  else f"relay:{hop_src}->{hop_dst}"))

    def _arrive(self, hops: list, index: int, message: Message,
                sender_cycle: int, honest: bool) -> None:
        """One routed hop arrived at ``hops[index + 1]``.

        At the final destination this is a delivery (telemetry carries
        the total ``hop`` count; ``src`` stays the original sender, as
        on the direct path).  At an intermediate node the message is
        forwarded to the next hop — unless the relay *crashed*, in
        which case the route is severed and the message dies (sparse
        topologies make crash faults cut routes; that is the model).
        A relay that merely finished still forwards: relaying is the
        network layer's transport service, and a terminated-but-correct
        node's links stay up.
        """
        hop = index + 1
        node = hops[index + 1]
        receiver = self._receivers[node]
        size = message.size_bits()
        if index + 2 == len(hops):
            if not receiver.live:
                return
            if self.trace is not None:
                self.trace.record(self.kernel.now, "deliver",
                                  sender=message.sender, destination=node,
                                  message=type(message).__name__, hop=hop)
            if self.telemetry is not None:
                self.telemetry.emit("deliver", {
                    "t": self.kernel.now, "src": message.sender,
                    "dst": node, "type": type(message).__name__,
                    "hop": hop})
            receiver.deliver(message)
            return
        if getattr(receiver, "halted", False):
            return  # route severed at a crashed relay
        next_node = hops[index + 2]
        if self.trace is not None:
            self.trace.record(self.kernel.now, "deliver",
                              sender=hops[index], destination=node,
                              message=type(message).__name__,
                              relay=True, hop=hop)
            self.trace.record(self.kernel.now, "send",
                              sender=node, destination=next_node,
                              message=type(message).__name__, bits=size,
                              honest=honest, relay=True, hop=hop + 1)
        if self.telemetry is not None:
            self.telemetry.emit("deliver", {
                "t": self.kernel.now, "src": hops[index], "dst": node,
                "type": type(message).__name__, "relay": True, "hop": hop})
            self.telemetry.emit("send", {
                "t": self.kernel.now, "src": node, "dst": next_node,
                "type": type(message).__name__, "bits": size,
                "honest": honest, "relay": True, "hop": hop + 1})
        if honest:
            self.metrics.record_message(node, size)
        self._forward(hops, index + 1, message, sender_cycle, honest)

    def _dispatch(self, sender_pid: int, destination: int, message: Message,
                  latency) -> None:
        if isinstance(latency, _Withhold):
            if self.telemetry is not None:
                self.telemetry.emit("withhold", {
                    "t": self.kernel.now, "src": sender_pid,
                    "dst": destination, "type": type(message).__name__})
            self._withheld.append(WithheldMessage(
                sender_pid, destination, message, self.kernel.now))
            return
        if not isinstance(latency, (int, float)) or latency < 0:
            raise ValueError(
                f"adversary returned invalid latency {latency!r}")
        delay = float(latency)
        if self.fifo:
            link = (sender_pid, destination)
            earliest = self._last_delivery.get(link, 0.0) + 1e-9
            arrival = max(self.kernel.now + delay, earliest)
            self._last_delivery[link] = arrival
            delay = arrival - self.kernel.now
        self.kernel.schedule(
            delay,
            lambda: self._deliver(destination, message),
            kind=f"deliver:{sender_pid}->{destination}")

    # -- the scale path's bulk broadcast ----------------------------------

    def broadcast_message(self, sender_pid: int, n: int, message: Message,
                          *, sender_cycle: int = 0, sink=None) -> None:
        """Broadcast ``message`` to every peer but the sender, grouping
        equal-latency runs of destinations into single delivery events.

        Semantics are exactly :meth:`Peer.broadcast`'s per-destination
        loop: every adversary hook (``permit_send``,
        ``transform_message``, ``message_latency``) fires once per
        destination, in ascending destination order, so RNG draw order
        and crash-mid-batch behaviour are bit-identical to the
        baseline.  Only the *scheduling* is collapsed: a maximal run of
        consecutive destinations whose message passed through
        untransformed with the same numeric latency becomes one queued
        event delivered by ``sink.deliver_span``.  Because the run's
        per-destination events would have carried consecutive sequence
        numbers, no other event can order between them — the pop order
        of the whole queue is provably unchanged (the golden battery
        pins this with the scale path forced on).

        Callers must ensure no per-delivery instrumentation is active
        (see ``ScaleContext.bulk_eligible``); withheld, transformed,
        and singleton deliveries fall back to the exact per-message
        paths.
        """
        if self._router is not None:
            # Routed topologies never qualify for span grouping (the
            # instance shadows BULK_CAPABLE off); if a caller gets here
            # anyway, degrade gracefully to exact per-edge sends.
            for destination in range(n):
                if destination != sender_pid:
                    self.send(sender_pid, destination, message,
                              sender_cycle=sender_cycle)
            return
        kernel = self.kernel
        adversary = self.adversary
        metrics = self.metrics
        sender = self._receivers.get(sender_pid)
        now = kernel.now
        size = message.size_bits()
        sent = 0          # untransformed sends, for one batched charge
        run_lo = -1       # current groupable destination run [lo, hi)
        run_hi = -1
        run_latency = 0.0

        def flush() -> None:
            nonlocal run_lo
            if run_lo < 0:
                return
            if run_hi - run_lo == 1:
                destination = run_lo
                kernel.schedule(
                    run_latency,
                    lambda: self._deliver(destination, message),
                    kind=f"deliver:{sender_pid}->{destination}")
            else:
                lo, hi = run_lo, run_hi
                kernel.schedule(
                    run_latency,
                    lambda: self._deliver_span(message, lo, hi, sink),
                    kind=f"deliver-span:{sender_pid}->{lo}:{hi}")
            run_lo = -1

        for destination in range(n):
            if destination == sender_pid:
                continue
            if sender is not None and not sender.live:
                # Crashed mid-batch: the remaining sends would all
                # short-circuit on the live check, exactly as here.
                break
            if not adversary.permit_send(sender_pid, destination, message,
                                         now):
                continue
            transformed = adversary.transform_message(
                sender_pid, destination, message, now, sender_cycle)
            if transformed is None:
                continue  # dynamically-corrupted sender: message eaten
            if transformed is not message:
                flush()
                metrics.record_message(sender_pid, transformed.size_bits())
                latency = adversary.message_latency(
                    sender_pid, destination, transformed, now, sender_cycle)
                self._dispatch(sender_pid, destination, transformed, latency)
                continue
            sent += 1
            latency = adversary.message_latency(
                sender_pid, destination, message, now, sender_cycle)
            if isinstance(latency, _Withhold):
                flush()
                self._withheld.append(WithheldMessage(
                    sender_pid, destination, message, now))
                continue
            if not isinstance(latency, (int, float)) or latency < 0:
                raise ValueError(
                    f"adversary returned invalid latency {latency!r}")
            latency = float(latency)
            if run_lo >= 0 and destination == run_hi \
                    and latency == run_latency:
                run_hi = destination + 1
            else:
                flush()
                run_lo, run_hi, run_latency = (destination,
                                               destination + 1, latency)
        flush()
        if sent:
            metrics.record_messages(sender_pid, sent, size)

    def _deliver_span(self, message: Message, lo: int, hi: int,
                      sink) -> None:
        """Deliver ``message`` to the contiguous pid span ``[lo, hi)``
        as one event.  ``events_processed`` is compensated so event
        accounting matches the per-destination engine exactly; the sink
        owns the per-peer effects (tallies and completion notifies).
        Crashed/finished receivers need no check here: the baseline
        pops their delivery events too (then evaporates them), and the
        sink's tally state for non-live peers is never read again.
        """
        self.kernel.events_processed += (hi - lo) - 1
        sink.deliver_span(message, lo, hi)

    def deliver_direct(self, destination: int, message: Message,
                       latency) -> None:
        """Schedule a delivery that bypasses send-side bookkeeping.

        Used by the data source (whose responses are not peer messages)
        and by the quiescence flush.  ``latency`` may be
        :data:`WITHHOLD`.
        """
        self._dispatch(message.sender, destination, message, latency)

    def _deliver(self, destination: int, message: Message) -> None:
        receiver = self._receivers[destination]
        if not receiver.live:
            return  # deliveries to crashed/finished peers evaporate
        if self.trace is not None:
            self.trace.record(self.kernel.now, "deliver",
                              sender=message.sender,
                              destination=destination,
                              message=type(message).__name__)
        if self.telemetry is not None:
            self.telemetry.emit("deliver", {
                "t": self.kernel.now, "src": message.sender,
                "dst": destination, "type": type(message).__name__})
        receiver.deliver(message)

    # -- quiescence ----------------------------------------------------------------

    def _flush_withheld(self) -> bool:
        """Quiescence hook: let the adversary release parked deliveries.

        Returns True when at least one new event was scheduled (the
        kernel then keeps running).  The adversary chooses which
        withheld messages to release; by the model it must eventually
        release them all, so the default adversary policy releases
        everything.
        """
        if not self._withheld:
            return False
        released = self.adversary.release_at_quiescence(list(self._withheld))
        if not released:
            return False
        released_ids = {id(entry) for entry in released}
        self._withheld = [entry for entry in self._withheld
                          if id(entry) not in released_ids]
        for entry in released:
            if self.telemetry is not None:
                self.telemetry.emit("release", {
                    "t": self.kernel.now, "src": entry.sender,
                    "dst": entry.destination,
                    "type": type(entry.message).__name__})
            self.kernel.schedule(
                0.0,
                (entry.resume if entry.resume is not None else
                 (lambda e=entry: self._deliver(e.destination, e.message))),
                kind=f"release:{entry.sender}->{entry.destination}")
        return True
