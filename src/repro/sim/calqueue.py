"""A bucketed calendar queue with exact ``(time, seq)`` ordering.

The kernel's default event store is a binary heap of
``(time, seq, action, kind)`` tuples.  At six-figure ``n`` the heap is
still correct but every push/pop pays ``O(log N)`` tuple comparisons on
a single large array; a calendar queue (Brown 1988) spreads entries
over time-indexed buckets so that push is ``O(1)`` and pop only touches
the handful of entries sharing the current bucket slot.

The implementation here is deliberately conservative about *ordering*:

* Entries with equal ``time`` always share a bucket (the bucket index
  is a pure function of ``time``), and each bucket is itself a small
  ``(time, seq)`` heap — so the global pop order is exactly the binary
  heap's pop order, tie-break included.  The golden-trace battery runs
  with the calendar queue forced on to pin this.
* A cached-min slot makes :meth:`peek` (and :func:`len`) ``O(1)``,
  which the profiler and the ``scheduler_stats`` telemetry use.
* Pushing an entry *behind* the current scan position (a zero-delay
  event after the scan advanced) resets the scan, so nothing is ever
  skipped; when a whole year of buckets is empty the queue falls back
  to a direct scan over bucket minima instead of spinning.

The queue is selected once, at kernel construction, from the expected
event count — a run never switches between heap and calendar mid-way
(see ``Kernel.__init__``), so the crossover cannot perturb a trace.
"""

from __future__ import annotations

import heapq
from typing import Optional

#: Entries are the kernel's ``(time, seq, action, kind)`` tuples.
Entry = tuple

#: Default bucket slot width in virtual-time units.  Latencies in the
#: simulator are O(1) (unit for NullAdversary, [0.5, 2.0] for the
#: random-delay adversary), so a slot of 1.0 keeps each pop's scan
#: short without scattering one timestep over many buckets.
DEFAULT_WIDTH = 1.0

#: Buckets are doubled when the population exceeds this many entries
#: per bucket on average.
_RESIZE_FACTOR = 4


class CalendarQueue:
    """Min-queue over ``(time, seq, ...)`` tuples, bucketed by time."""

    def __init__(self, *, width: float = DEFAULT_WIDTH,
                 nbuckets: int = 64) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if nbuckets < 1:
            raise ValueError(f"nbuckets must be >= 1, got {nbuckets}")
        self._width = width
        self._nbuckets = nbuckets
        self._buckets: list[list[Entry]] = [[] for _ in range(nbuckets)]
        self._size = 0
        # Scan state: the bucket the next pop starts searching from and
        # the half-open slot [_slot_start, _year_end) it represents.
        self._cur = 0
        self._slot_start = 0.0
        self._year_end = width
        # Cached global minimum (lazy; cleared by pop and resize).
        self._min: Optional[Entry] = None
        self._min_bucket = -1

    # -- core interface ----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, entry: Entry) -> None:
        time = entry[0]
        index = int(time / self._width) % self._nbuckets
        heapq.heappush(self._buckets[index], entry)
        self._size += 1
        if time < self._slot_start:
            # A zero-delay event landed behind the scan position; pull
            # the scan back so the next pop cannot skip it.
            self._reposition(time)
        # Keep the cached minimum valid, never *install* one: after a
        # pop (or resize) clears the cache, smaller entries may remain
        # in other buckets, so the next peek must re-locate lazily.
        if self._min is not None and entry < self._min:
            self._min = entry
            self._min_bucket = index
        if self._size > _RESIZE_FACTOR * self._nbuckets:
            self._grow()

    def peek(self) -> Optional[Entry]:
        """The next entry to pop, or ``None`` when empty.  ``O(1)``
        amortised: the scan for the minimum is cached until a pop."""
        if self._size == 0:
            return None
        if self._min is None:
            self._locate_min()
        return self._min

    def pop(self) -> Entry:
        entry = self.peek()
        if entry is None:
            raise IndexError("pop from an empty CalendarQueue")
        # The cached minimum is by construction the top of its bucket's
        # heap, so popping that bucket removes exactly ``entry``.
        popped = heapq.heappop(self._buckets[self._min_bucket])
        assert popped is entry
        self._size -= 1
        self._min = None
        return entry

    # -- internals ---------------------------------------------------------

    def _reposition(self, time: float) -> None:
        """Point the scan at the bucket slot containing ``time``."""
        slot = int(time / self._width)
        self._cur = slot % self._nbuckets
        self._slot_start = slot * self._width
        self._year_end = self._slot_start + self._width

    def _locate_min(self) -> None:
        """Find the global minimum entry.  Calendar scan: walk buckets
        from the current slot, taking the first bucket whose top entry
        falls inside the slot's time window; after a fruitless year,
        fall back to a direct scan over all bucket minima."""
        buckets = self._buckets
        width = self._width
        cur, slot_start, year_end = (self._cur, self._slot_start,
                                     self._year_end)
        for _ in range(self._nbuckets):
            bucket = buckets[cur]
            if bucket and bucket[0][0] < year_end:
                self._cur = cur
                self._slot_start = slot_start
                self._year_end = year_end
                self._min = bucket[0]
                self._min_bucket = cur
                return
            cur = (cur + 1) % self._nbuckets
            slot_start = year_end
            year_end += width
        # Sparse region: nothing within a whole year of slots.  Take
        # the true minimum over bucket tops and re-anchor the scan.
        best = None
        best_bucket = -1
        for index, bucket in enumerate(buckets):
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_bucket = index
        assert best is not None, "size > 0 but all buckets empty"
        self._min = best
        self._min_bucket = best_bucket
        self._reposition(best[0])

    def _grow(self) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._nbuckets *= 2
        self._buckets = [[] for _ in range(self._nbuckets)]
        for entry in entries:
            index = int(entry[0] / self._width) % self._nbuckets
            heapq.heappush(self._buckets[index], entry)
        self._min = None
        if entries:
            self._reposition(min(entry[0] for entry in entries))
