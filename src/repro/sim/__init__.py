"""Deterministic event simulation of the DR model.

The subpackage provides the asynchronous message-passing substrate the
paper's protocols run on: a virtual-time kernel
(:mod:`~repro.sim.scheduler`), a complete peer-to-peer network whose
per-message delays are chosen by a pluggable adversary
(:mod:`~repro.sim.network`), the trusted external data source with
query accounting (:mod:`~repro.sim.source`), and the :class:`Peer` API
protocols are written against (:mod:`~repro.sim.peer`).

Entry point: :class:`Simulation` / :func:`run_download` in
:mod:`~repro.sim.runner`.
"""

from repro.sim.errors import (
    BudgetExceeded,
    ConfigurationError,
    DeadlockError,
    ProtocolViolation,
    SimulationError,
)
from repro.sim.messages import FIELD_BITS, HEADER_BITS, SOURCE_ID, Message
from repro.sim.metrics import ComplexityReport, MetricsCollector, RunStatus
from repro.sim.network import WITHHOLD, Network, WithheldMessage
from repro.sim.peer import MessageLog, Peer, SimEnv
from repro.sim.process import Process, Sleep, WaitUntil
from repro.sim.runner import RunResult, Simulation, run_download
from repro.sim.scheduler import Kernel
from repro.sim.source import (DataSource, MutableDataSource,
                              mutable_source_factory)
from repro.sim.sourceset import (
    PerReaderViewFault,
    SlowFault,
    SourceFault,
    SourceSet,
    StaleFault,
    ViewFault,
    WithholdFault,
    WrongBitsFault,
    parse_fault,
    parse_faults,
)
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "BudgetExceeded",
    "ComplexityReport",
    "ConfigurationError",
    "DataSource",
    "DeadlockError",
    "FIELD_BITS",
    "HEADER_BITS",
    "Kernel",
    "Message",
    "MessageLog",
    "MetricsCollector",
    "MutableDataSource",
    "mutable_source_factory",
    "Network",
    "Peer",
    "Process",
    "ProtocolViolation",
    "RunResult",
    "RunStatus",
    "SimEnv",
    "Simulation",
    "SimulationError",
    "Sleep",
    "SOURCE_ID",
    "TraceRecord",
    "TraceRecorder",
    "WaitUntil",
    "WITHHOLD",
    "WithheldMessage",
    "run_download",
]
