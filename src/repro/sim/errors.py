"""Exception hierarchy for the simulator and the protocols built on it."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the simulation framework."""


class DeadlockError(SimulationError):
    """The event queue drained while live processes were still waiting.

    In the DR model a correct protocol must never deadlock: Claims 2-3
    of the paper prove the crash-fault protocols always make progress.
    The simulator therefore treats an empty event queue with parked,
    non-terminated, non-crashed processes (and no withheld messages the
    adversary is willing to release) as a hard error, and reports which
    process was waiting on what.
    """

    def __init__(self, waiting: list[tuple[str, str]]) -> None:
        self.waiting = waiting
        details = "; ".join(f"{name} waiting for {what}" for name, what in waiting)
        super().__init__(f"simulation deadlocked: {details}")

    def __reduce__(self):
        # The default exception reduce re-calls __init__ with ``args``
        # (the formatted message), which is not a ``waiting`` list —
        # unpickling would fail, and an unpicklable exception crossing
        # a worker boundary breaks the whole process pool.
        return (DeadlockError, (self.waiting,))


class ProtocolViolation(SimulationError):
    """A peer broke a rule of the model (e.g. oversized message)."""


class BudgetExceeded(SimulationError):
    """A configured safety budget (events or virtual time) was exhausted."""


class ConfigurationError(SimulationError):
    """The simulation was assembled from inconsistent components."""
