"""Message base types and size accounting.

The DR model charges message complexity in *messages* and bounds each
message by a size parameter ``b`` (bits).  Every concrete protocol
message therefore reports its own size in bits via :meth:`Message.size_bits`;
the network uses it for accounting and (optionally) for enforcing the
per-message limit.

Sizing conventions (documented here once, used by every protocol):

- a peer ID, bit index, phase/stage/cycle number, or segment ID costs
  :data:`FIELD_BITS` (32) bits;
- a bit-string payload costs its length;
- a set/list costs the sum of its elements;
- every message carries a constant :data:`HEADER_BITS` header (type tag
  plus sender ID).

These constants only shift measured message-bit totals by constant
factors; the complexity *shapes* reproduced in the benchmarks are
insensitive to them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

#: Bits charged for one scalar field (ID, index, counter).
FIELD_BITS = 32
#: Fixed per-message header (message type + sender).
HEADER_BITS = 2 * FIELD_BITS


def bits_for(value: object) -> int:
    """Best-effort size in bits for a payload value.

    Understands the payload shapes the protocols actually send:
    ints/bools/None/floats are scalars, strings are bit strings, and
    containers cost the sum of their items plus a length field.

    Precedence matters for booleans: ``bool`` is a subclass of ``int``
    in Python, so the ``bool``/``None`` check MUST run before the
    ``int`` check.  A flag costs 1 bit; reordering the branches would
    silently charge ``True``/``False`` at :data:`FIELD_BITS` (32) and
    shift every protocol's measured message-bit totals.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return FIELD_BITS
    if isinstance(value, float):
        return 2 * FIELD_BITS
    if isinstance(value, str):
        return len(value)
    if isinstance(value, dict):
        return FIELD_BITS + sum(bits_for(key) + bits_for(item)
                                for key, item in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return FIELD_BITS + sum(bits_for(item) for item in value)
    raise TypeError(f"cannot size payload of type {type(value).__name__}")


#: Per-type cache of payload field names (everything except ``sender``),
#: so :meth:`Message.size_bits` pays dataclass reflection once per class
#: instead of once per send.
_PAYLOAD_FIELDS: dict[type, tuple[str, ...]] = {}


def _payload_fields(message_type: type) -> tuple[str, ...]:
    names = _PAYLOAD_FIELDS.get(message_type)
    if names is None:
        names = tuple(field.name for field in fields(message_type)
                      if field.name != "sender")
        _PAYLOAD_FIELDS[message_type] = names
    return names


@dataclass(frozen=True)
class Message:
    """Base class for everything sent over the peer-to-peer network.

    Concrete messages are frozen dataclasses; immutability means a
    broadcast can share one object among ``n - 1`` deliveries without
    any risk of cross-peer aliasing bugs.
    """

    sender: int

    def size_bits(self) -> int:
        """Size of this message in bits (header + all payload fields)."""
        payload = 0
        for name in _payload_fields(type(self)):
            payload += bits_for(getattr(self, name))
        return HEADER_BITS + payload


@dataclass(frozen=True)
class SourceResponse(Message):
    """Answer from the external data source to one query request.

    ``sender`` is :data:`SOURCE_ID`.  ``values`` maps queried bit index
    to its value; segment queries arrive as one response covering the
    whole range.
    """

    request_id: int
    values: dict[int, int]

    def size_bits(self) -> int:
        # The source answers with raw bits; indices are implied by the
        # request, so only the bits themselves are charged.
        return HEADER_BITS + FIELD_BITS + len(self.values)


#: Pseudo peer ID used by the external data source in responses.
SOURCE_ID = -1


def total_bits(messages: Iterable[Message]) -> int:
    """Sum of :meth:`Message.size_bits` over ``messages``."""
    return sum(message.size_bits() for message in messages)
