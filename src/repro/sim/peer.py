"""The peer API protocol implementations are written against.

:class:`Peer` wraps the raw process model with everything a DR-model
peer may do — and nothing more:

- ``self.send(dst, msg)`` / ``self.broadcast(msg)`` — peer-to-peer
  messages (the adversary delays them);
- ``yield from self.query_bits(indices)`` — query the external source
  and wait for the (adversary-delayed) answer;
- ``yield self.wait_until(pred, desc)`` — adaptive waiting on the
  inbox;
- ``self.finish(output)`` — terminate with an output array.

Protocol code never touches the kernel, the network, or other peers'
objects directly, so a protocol written against this API is
automatically subject to the adversary.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Type, TypeVar

from repro.sim.messages import Message, SourceResponse
from repro.sim.process import Process, WaitUntil
from repro.util.bitarrays import BitArray
from repro.util.rng import SplittableRNG

M = TypeVar("M", bound=Message)


@dataclass
class SimEnv:
    """Everything a run shares: kernel, network, source, parameters.

    ``n`` is the number of peers, ``t`` the fault budget, ``ell`` the
    input length in bits.  ``rng`` is the root randomness; each
    component derives its own child stream.
    """

    kernel: object
    network: object
    source: object
    metrics: object
    adversary: object
    n: int
    t: int
    ell: int
    rng: SplittableRNG
    message_size_limit: Optional[int] = None
    trace: Optional[object] = None
    #: Resolved telemetry backend, or ``None`` when telemetry is
    #: disabled — the runner caches the process-global backend here
    #: once per run so per-event sites pay a single ``is not None``.
    telemetry: Optional[object] = None
    extras: dict = field(default_factory=dict)
    #: The run's :class:`~repro.sim.scalepath.ScaleContext` when the
    #: opt-in vectorized scale path is active, else ``None`` (the
    #: default engine; every scale hook is then skipped).
    scale: Optional[object] = None
    #: The run's :class:`~repro.topology.Topology` when connectivity is
    #: sparse, else ``None`` (the model's complete graph).  Protocols
    #: may inspect it (e.g. ``env.topology.neighbors(pid)``); sends to
    #: non-neighbors are legal and relayed by the network layer.
    topology: Optional[object] = None

    @property
    def peer_ids(self) -> range:
        """All peer IDs, ``0 .. n-1``."""
        return range(self.n)


class MessageLog:
    """A peer's inbox with by-type views for cheap filtered waiting."""

    def __init__(self) -> None:
        self._all: list[Message] = []
        self._by_type: dict[type, list[Message]] = defaultdict(list)

    def add(self, message: Message) -> None:
        """Record a delivered message."""
        self._all.append(message)
        self._by_type[type(message)].append(message)

    def __len__(self) -> int:
        return len(self._all)

    def all(self) -> list[Message]:
        """Every message received so far, in delivery order."""
        return list(self._all)

    def of_type(self, message_type: Type[M],
                predicate: Optional[Callable[[M], bool]] = None) -> list[M]:
        """Messages of ``message_type`` (optionally filtered)."""
        messages = self._by_type.get(message_type, [])
        if predicate is None:
            return list(messages)
        return [message for message in messages if predicate(message)]

    def count(self, message_type: Type[M],
              predicate: Optional[Callable[[M], bool]] = None) -> int:
        """Count of matching messages."""
        return len(self.of_type(message_type, predicate))

    def senders(self, message_type: Type[M],
                predicate: Optional[Callable[[M], bool]] = None) -> set[int]:
        """Distinct senders of matching messages."""
        return {message.sender
                for message in self.of_type(message_type, predicate)}

    def value_counts(self, message_type: Type[M],
                     key: Callable[[M], object]) -> Counter:
        """Histogram of ``key(message)`` over messages of a type,
        counting each *sender* at most once per key value (a Byzantine
        peer repeating itself must not inflate frequency counts)."""
        seen: set[tuple[int, object]] = set()
        histogram: Counter = Counter()
        for message in self.of_type(message_type):
            entry = (message.sender, key(message))
            if entry not in seen:
                seen.add(entry)
                histogram[key(message)] += 1
        return histogram


class Peer(Process):
    """Base class for honest DR-model peers."""

    def __init__(self, pid: int, env: SimEnv) -> None:
        super().__init__(name=f"peer-{pid}")
        self.pid = pid
        self.env = env
        self.inbox = MessageLog()
        self.rng = env.rng.split(f"peer-{pid}")
        self.output: Optional[BitArray] = None
        self.cycle = 0
        self._source_responses: dict[int, dict[int, int]] = {}
        self._request_counter = 0
        self._handlers: dict[Type[Message],
                             list[Callable[[Message], None]]] = {}

    # -- convenient parameter views ------------------------------------------

    @property
    def n(self) -> int:
        """Number of peers in the network."""
        return self.env.n

    @property
    def t(self) -> int:
        """Upper bound on the number of faulty peers."""
        return self.env.t

    @property
    def ell(self) -> int:
        """Input length in bits."""
        return self.env.ell

    @property
    def others(self) -> list[int]:
        """All peer IDs except this peer's own."""
        return [pid for pid in self.env.peer_ids if pid != self.pid]

    # -- receiving --------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Network/source callback: a message arrived."""
        if isinstance(message, SourceResponse):
            self._source_responses[message.request_id] = dict(message.values)
        else:
            self.inbox.add(message)
            for handler in self._handlers.get(type(message), ()):
                handler(message)
        self.env.kernel.notify(self)

    def on_message(self, message_type: Type[M],
                   handler: Callable[[M], None]) -> None:
        """Register a reactive handler for ``message_type``.

        Handlers run at delivery time, *outside* the generator body —
        they let a peer answer requests while its main logic is parked
        in a wait (the paper's "upon receiving a request" clauses).
        Handlers must not yield; if service must be deferred (the
        receiver has not reached the required stage yet), the handler
        should queue the request and the body should drain the queue at
        stage transitions.
        """
        self._handlers.setdefault(message_type, []).append(handler)

    # -- sending ----------------------------------------------------------------

    def send(self, destination: int, message: Message) -> None:
        """Send one message to ``destination``."""
        self.env.network.send(self.pid, destination, message,
                              sender_cycle=self.cycle)

    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every *other* peer (ascending ID order).

        A crash mid-broadcast leaves a prefix of the ID order delivered
        — exactly the partial-send behaviour the crash model allows.

        On the scale path, a broadcast of a message type with a
        registered bulk sink is handed to
        :meth:`~repro.sim.network.Network.broadcast_message`, which
        fires the same per-destination adversary hooks in the same
        order but schedules one event per equal-latency destination
        run instead of one per destination.
        """
        env = self.env
        scale = env.scale
        if scale is not None:
            sink = scale.sinks.get(type(message))
            if sink is not None and scale.bulk_eligible(env.network):
                env.network.broadcast_message(self.pid, env.n, message,
                                              sender_cycle=self.cycle,
                                              sink=sink)
                return
        for destination in env.peer_ids:
            if destination != self.pid:
                env.network.send(self.pid, destination, message,
                                 sender_cycle=self.cycle)

    # -- querying the source -------------------------------------------------------

    @property
    def source_count(self) -> int:
        """Number of external source endpoints (1 unless the run uses
        a :class:`~repro.sim.sourceset.SourceSet`)."""
        return getattr(self.env.source, "k", 1)

    def start_query(self, indices: Iterable[int], source: int = 0) -> int:
        """Issue a query to endpoint ``source`` without waiting.

        Returns the request id; pair with :meth:`response_ready` /
        :meth:`take_response` to collect the answer later.  The
        multi-source protocols use this to keep ``q`` queries in
        flight per chunk instead of serializing round trips.
        """
        if not isinstance(indices, range):
            indices = list(indices)
        request_id = self._request_counter
        self._request_counter += 1
        if not indices:
            self._source_responses[request_id] = {}
            return request_id
        self.env.source.request_bits_from(source, self.pid, request_id,
                                          indices)
        return request_id

    def response_ready(self, request_id: int) -> bool:
        """True once the answer to ``request_id`` has arrived."""
        return request_id in self._source_responses

    def take_response(self, request_id: int) -> dict[int, int]:
        """Pop and return the answer to ``request_id`` (once ready)."""
        return self._source_responses.pop(request_id)

    def query_bits(self, indices: Iterable[int]) -> Iterator[WaitUntil]:
        """Query the source for ``indices``; yields until answered.

        Use as ``values = yield from self.query_bits([...])``; the
        result maps each index to its bit.  An empty index set costs
        nothing and returns immediately.
        """
        # Keep range objects intact: the source has a fast path for
        # contiguous step-1 ranges (no sort/dedup, one-shift bitmask).
        if not isinstance(indices, range):
            indices = list(indices)
        if not indices:
            return {}
        request_id = self._request_counter
        self._request_counter += 1
        self.env.source.request_bits(self.pid, request_id, indices)
        yield WaitUntil(lambda: request_id in self._source_responses,
                        f"peer-{self.pid} source response #{request_id}")
        return self._source_responses.pop(request_id)

    def query_segment(self, lo: int, hi: int) -> Iterator[WaitUntil]:
        """Query the contiguous segment ``[lo, hi)``; returns a bit string."""
        values = yield from self.query_bits(range(lo, hi))
        return "".join("1" if values[index] else "0"
                       for index in range(lo, hi))

    # -- waiting ---------------------------------------------------------------------

    def wait_until(self, predicate: Callable[[], bool],
                   description: str) -> WaitUntil:
        """Build a wait request tagged with this peer's name."""
        return WaitUntil(predicate, f"peer-{self.pid}: {description}")

    def wait_for_messages(self, message_type: Type[M], minimum: int,
                          predicate: Optional[Callable[[M], bool]] = None,
                          description: str = "") -> WaitUntil:
        """Wait until ``minimum`` distinct senders match.

        Counting distinct senders (not raw messages) is what the
        protocols' "hear from at least n - t peers" steps mean; it also
        blunts Byzantine message spam.
        """
        what = description or f"{minimum} x {message_type.__name__}"
        return self.wait_until(
            lambda: len(self.inbox.senders(message_type, predicate)) >= minimum,
            what)

    def wait_with_deadline(self, predicate: Callable[[], bool],
                           deadline: float, description: str) -> WaitUntil:
        """Wait for ``predicate`` but give up at absolute ``deadline``.

        NOTE: clocks do not exist in the pure asynchronous model — no
        DR-model protocol in this library uses this.  It exists for the
        *application* layer (the oracle pipeline), where a Byzantine
        data source can make a Download wait unsatisfiable and the
        deployment is partially synchronous in practice (the paper's
        footnote 4).  The caller must handle the timed-out case.
        """
        kernel = self.env.kernel
        delay = max(0.0, deadline - kernel.now)
        kernel.schedule(delay, lambda: kernel.notify(self),
                        kind=f"deadline:{self.name}")
        return self.wait_until(
            lambda: predicate() or kernel.now >= deadline, description)

    # -- cycles & termination ------------------------------------------------------

    def begin_cycle(self) -> None:
        """Mark the start of the peer's next local cycle.

        Cycle numbers feed the adversary's cycle-respecting scheduling
        restriction: latencies for cycle ``c`` messages are fixed
        without knowledge of cycle-``c`` coin flips.
        """
        self.cycle += 1
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.emit("cycle", {"t": self.env.kernel.now,
                                     "peer": self.pid,
                                     "cycle": self.cycle})
        self.env.adversary.on_cycle_start(self.pid, self.cycle,
                                          self.env.kernel.now)

    def finish(self, output: BitArray) -> None:
        """Terminate with ``output`` (call immediately before returning)."""
        self.output = output
        scale = self.env.scale
        if scale is not None:
            scale.state.terminated[self.pid] = 1
        self.env.metrics.record_termination(self.pid, self.env.kernel.now)
        if self.env.trace is not None:
            self.env.trace.record(self.env.kernel.now, "terminate",
                                  pid=self.pid)
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.emit("terminate", {"t": self.env.kernel.now,
                                         "peer": self.pid})

    def body(self) -> Iterator[WaitUntil]:  # pragma: no cover - abstract
        raise NotImplementedError
