"""A set of ``k`` external sources, up to ``f`` of them faulty.

The paper's source is single and trusted — the strongest assumption in
the model.  "Byzantine Resilient Computing with the Cloud" (arXiv
2309.16359, the same author team) relaxes exactly this: peers may
query ``k`` external endpoints of which up to ``f`` return wrong,
stale, or no answers, and correctness must be recovered by
cross-validating answers across endpoints.

:class:`SourceSet` generalizes :class:`~repro.sim.source.DataSource`
into such a set.  Every endpoint answers from its own *view* of the
input array; the view is determined by a pluggable per-source fault
model (:class:`SourceFault` subclasses).  The whole set shares one
metrics collector, so Q comparisons against the single-source baseline
stay honest: **every request to every endpoint is charged** (querying
``q`` sources per digit costs ``q`` times the bits).

Fault grammar (used by :class:`~repro.experiments.ExperimentSpec`'s
``source_faults`` field, the CLI, and the fuzzer) — one string per
endpoint, ``kind[:param][@onset]``:

- ``honest`` — answers the live truth (the trusted baseline);
- ``wrong-bits[:rate]`` — a fixed lying view: each bit independently
  flipped with probability ``rate`` (default 0.5), seeded;
- ``stale[:rate]`` — a coherent lagging snapshot: the view is frozen
  at construction (later mutations of a mutable ``X`` are invisible to
  it) and a seeded ``rate`` fraction of positions additionally hold
  missed-update values (default 0.05);
- ``withhold`` — answers are withheld until quiescence (the async
  kernel eventually compels release, so runs still terminate — a
  withholding source costs time, never liveness);
- ``slow[:factor]`` — answers arrive ``factor`` times later than the
  adversary's chosen latency (default 4.0).

``@onset`` delays the fault: before virtual time ``onset`` the
endpoint behaves honestly (e.g. ``wrong-bits:0.5@10`` starts lying at
``t = 10``).

A ``k = 1`` honest :class:`SourceSet` is bit-identical to the plain
:class:`~repro.sim.source.DataSource` — same accounting, same
latencies, same telemetry, no extra RNG draws — which the golden-trace
battery pins (``tests/integration/test_golden_traces.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.sim.messages import SOURCE_ID, SourceResponse
from repro.sim.network import WITHHOLD
from repro.util.bitarrays import BitArray, canonical_indices, mask_to_set
from repro.util.rng import SplittableRNG
from repro.util.validation import check_index, check_range


class SourceFault:
    """Per-endpoint fault model; the base class *is* the honest model.

    Subclasses override :meth:`build_view` (what the endpoint answers
    from once the fault is active) and/or the latency knobs
    (:attr:`withholding`, :attr:`latency_factor`).  Before ``onset``
    every endpoint answers the live truth at normal latency.
    """

    kind = "honest"
    #: When True, active-fault responses get the WITHHOLD latency (the
    #: kernel releases them at quiescence, so runs still terminate).
    withholding = False
    #: Numeric latencies are multiplied by this once the fault is
    #: active (1.0 = untouched; the honest/k=1 fast path skips the
    #: multiply entirely so float identity is preserved bit-for-bit).
    latency_factor = 1.0

    def __init__(self, onset: float = 0.0) -> None:
        self.onset = float(onset)

    def build_view(self, data: BitArray, rng: SplittableRNG) -> BitArray:
        """The array this endpoint answers from while the fault is
        active.  The honest model returns ``data`` itself (sharing the
        reference, so mutations of a mutable ``X`` stay visible)."""
        return data

    def view_for(self, pid: int) -> Optional[BitArray]:
        """Per-reader view override (equivocating endpoints), or None
        to use the shared :meth:`build_view` array."""
        return None

    def describe(self) -> str:
        suffix = f"@{self.onset:g}" if self.onset else ""
        return f"{self.kind}{suffix}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SourceFault {self.describe()}>"


class WrongBitsFault(SourceFault):
    """A fixed lying view: each bit flipped independently with
    probability ``rate`` (seeded, so the lie is reproducible)."""

    kind = "wrong-bits"

    def __init__(self, rate: float = 0.5, onset: float = 0.0) -> None:
        super().__init__(onset)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"wrong-bits rate must be in [0, 1], "
                             f"got {rate}")
        self.rate = rate

    def build_view(self, data: BitArray, rng: SplittableRNG) -> BitArray:
        view = data.copy()
        for index in range(len(view)):
            if rng.random() < self.rate:
                view[index] = 1 - view[index]
        return view

    def describe(self) -> str:
        suffix = f"@{self.onset:g}" if self.onset else ""
        return f"{self.kind}:{self.rate:g}{suffix}"


class StaleFault(SourceFault):
    """A coherent lagging snapshot of a possibly-mutable ``X``.

    The view is frozen at construction time — mutations applied to the
    live array later (e.g. by a mutable-source schedule) never reach
    it — and a seeded ``rate`` fraction of positions additionally hold
    flipped "missed update" values, so staleness is observable even
    when the truth is static.
    """

    kind = "stale"

    def __init__(self, rate: float = 0.05, onset: float = 0.0) -> None:
        super().__init__(onset)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"stale rate must be in [0, 1], got {rate}")
        self.rate = rate

    def build_view(self, data: BitArray, rng: SplittableRNG) -> BitArray:
        view = data.copy()
        missed = max(1, round(self.rate * len(view))) if self.rate else 0
        for index in sorted(rng.sample(range(len(view)),
                                       min(missed, len(view)))):
            view[index] = 1 - view[index]
        return view

    def describe(self) -> str:
        suffix = f"@{self.onset:g}" if self.onset else ""
        return f"{self.kind}:{self.rate:g}{suffix}"


class WithholdFault(SourceFault):
    """Answers truthfully but withholds responses until quiescence."""

    kind = "withhold"
    withholding = True


class SlowFault(SourceFault):
    """Answers truthfully but ``factor`` times slower."""

    kind = "slow"

    def __init__(self, factor: float = 4.0, onset: float = 0.0) -> None:
        super().__init__(onset)
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1, got {factor}")
        self.latency_factor = factor

    def describe(self) -> str:
        suffix = f"@{self.onset:g}" if self.onset else ""
        return f"{self.kind}:{self.latency_factor:g}{suffix}"


class ViewFault(SourceFault):
    """An endpoint answering from an explicit fixed array.

    The adapter the oracle layer uses: a feed's encoded value vector
    becomes the endpoint's view, so a Download protocol can run
    *against* a feed set through the standard source-set machinery.
    """

    kind = "view"

    def __init__(self, view: BitArray, *, honest: bool = False,
                 onset: float = 0.0) -> None:
        super().__init__(onset)
        self.view = view
        self.honest = honest

    def build_view(self, data: BitArray, rng: SplittableRNG) -> BitArray:
        if len(self.view) != len(data):
            raise ValueError(
                f"view has {len(self.view)} bits, input has {len(data)}")
        return self.view


class PerReaderViewFault(ViewFault):
    """An equivocating endpoint: each reader may see a different array
    (the nastiest feed behaviour in the paper's oracle model)."""

    kind = "equivocate"

    def __init__(self, per_reader: dict[int, BitArray], default: BitArray,
                 *, onset: float = 0.0) -> None:
        super().__init__(default, onset=onset)
        self.per_reader = dict(per_reader)

    def view_for(self, pid: int) -> Optional[BitArray]:
        return self.per_reader.get(pid)


_FAULT_KINDS = {
    "honest": SourceFault,
    "wrong-bits": WrongBitsFault,
    "stale": StaleFault,
    "withhold": WithholdFault,
    "slow": SlowFault,
}


def parse_fault(spec: Union[str, SourceFault]) -> SourceFault:
    """Parse one ``kind[:param][@onset]`` fault spec string.

    Ready :class:`SourceFault` instances pass through, so programmatic
    callers (the oracle layer, tests) can mix instances and strings.
    """
    if isinstance(spec, SourceFault):
        return spec
    text = str(spec).strip()
    onset = 0.0
    if "@" in text:
        text, _, onset_text = text.rpartition("@")
        try:
            onset = float(onset_text)
        except ValueError:
            raise ValueError(f"bad fault onset {onset_text!r} in {spec!r}")
        if onset < 0:
            raise ValueError(f"fault onset must be >= 0 in {spec!r}")
    kind, _, param = text.partition(":")
    kind = kind.strip()
    if kind not in _FAULT_KINDS:
        raise ValueError(f"unknown source fault {kind!r} in {spec!r}; "
                         f"known: {sorted(_FAULT_KINDS)}")
    cls = _FAULT_KINDS[kind]
    if not param:
        return cls(onset=onset)
    if kind in ("honest", "withhold"):
        raise ValueError(f"fault {kind!r} takes no parameter ({spec!r})")
    try:
        value = float(param)
    except ValueError:
        raise ValueError(f"bad fault parameter {param!r} in {spec!r}")
    return cls(value, onset=onset)


def parse_faults(specs: Sequence[Union[str, SourceFault]], k: int
                 ) -> list[SourceFault]:
    """Faults for ``k`` endpoints; unspecified endpoints are honest.

    ``specs[i]`` applies to endpoint ``i`` — the positional convention
    the spec layer, CLI, and fuzzer share.
    """
    if len(specs) > k:
        raise ValueError(f"{len(specs)} source faults for only {k} "
                         f"sources")
    faults = [parse_fault(spec) for spec in specs]
    faults.extend(SourceFault() for _ in range(k - len(faults)))
    return faults


class SourceSet:
    """``k`` DataSource-like endpoints over one ground-truth array.

    Duck-types the full :class:`~repro.sim.source.DataSource` surface
    (``request_bits`` routes to endpoint 0, so single-source protocols
    run unchanged against a set), and adds
    :meth:`request_bits_from` for protocols that pick their endpoint.

    Accounting is per (peer, source, position):
    :attr:`queried_indices` unions over endpoints for baseline
    compatibility, :attr:`queried_by_source` keeps the full breakdown,
    and :class:`~repro.sim.metrics.MetricsCollector` is charged for
    **every** request — cross-validation's q-fold query cost is never
    hidden.
    """

    def __init__(self, data: BitArray, metrics, network, adversary, *,
                 k: Optional[int] = None,
                 faults: Sequence[Union[str, SourceFault]] = (),
                 rng: Optional[SplittableRNG] = None,
                 mutations: Sequence[tuple] = ()) -> None:
        self.data = data
        self.metrics = metrics
        self.network = network
        self.adversary = adversary
        self.k = k if k is not None else max(1, len(faults))
        if self.k < 1:
            raise ValueError(f"a source set needs k >= 1, got {self.k}")
        self.faults = parse_faults(faults, self.k)
        self._requests_served = 0
        self._queried_masks: dict[int, int] = {}
        self._per_source_masks: dict[tuple[int, int], int] = {}
        self.telemetry = None
        # Faulty views are derived from stateless RNG splits labelled
        # by endpoint, so building them never perturbs any other
        # stream (peer RNGs, the input array) — the k=1 honest path
        # stays bit-identical to the plain DataSource.
        view_rng = rng if rng is not None else SplittableRNG(0)
        self._views = [
            fault.build_view(self.data,
                             view_rng.split(f"source-{sid}"))
            for sid, fault in enumerate(self.faults)]
        # Mutable truth composes with the fault models through view
        # *aliasing*: honest endpoints answer from ``self.data`` itself
        # (build_view returns the reference), so scheduled flips reach
        # them immediately, while stale/wrong-bits views are copies
        # frozen above — a ``stale:0`` endpoint is therefore a pure
        # pre-mutation snapshot of a mutable ``X``, exactly the lagging
        # replica of the paper's closing open problem.  Views freeze
        # BEFORE the first flip can fire because mutations only run
        # once the kernel does.
        self.mutations = list(mutations)
        self.applied_mutations: list[tuple[float, int]] = []
        for time, index in self.mutations:
            check_index("mutation index", index, len(self.data))
            network.kernel.schedule(time,
                                    lambda i=index: self._flip(i),
                                    kind=f"mutate:{index}")

    def _flip(self, index: int) -> None:
        self.data[index] = 1 - self.data[index]
        self.applied_mutations.append((self.network.kernel.now, index))

    def __len__(self) -> int:
        return len(self.data)

    @property
    def requests_served(self) -> int:
        """Total query requests answered, across all endpoints."""
        return self._requests_served

    @property
    def queried_indices(self) -> dict[int, set[int]]:
        """Positions each peer queried, unioned over endpoints (the
        single-source-compatible view the runner exports)."""
        return {pid: mask_to_set(mask)
                for pid, mask in self._queried_masks.items()}

    @property
    def queried_by_source(self) -> dict[tuple[int, int], set[int]]:
        """Positions queried per ``(peer, source)`` pair."""
        return {key: mask_to_set(mask)
                for key, mask in self._per_source_masks.items()}

    def honest_sources(self) -> list[int]:
        """Endpoint IDs whose fault model is the honest baseline."""
        return [sid for sid, fault in enumerate(self.faults)
                if type(fault) is SourceFault
                or getattr(fault, "honest", False)]

    # -- querying -----------------------------------------------------------

    def request_bits(self, pid: int, request_id: int,
                     indices: Sequence[int]) -> None:
        """Single-source compatibility: query endpoint 0."""
        self.request_bits_from(0, pid, request_id, indices)

    def request_bits_from(self, source_id: int, pid: int, request_id: int,
                          indices: Sequence[int]) -> None:
        """Serve a query for ``indices`` from endpoint ``source_id``.

        Charged exactly like the single source charges — at request
        time, duplicates within a request collapsed, re-queries across
        requests (or across endpoints) charged again.
        """
        if not 0 <= source_id < self.k:
            raise ValueError(f"source {source_id} out of range "
                             f"[0, {self.k})")
        unique, mask = canonical_indices(indices, len(self.data))
        self.metrics.record_query(pid, len(unique))
        self._queried_masks[pid] = self._queried_masks.get(pid, 0) | mask
        key = (pid, source_id)
        self._per_source_masks[key] = \
            self._per_source_masks.get(key, 0) | mask
        self._requests_served += 1
        now = self.network.kernel.now
        if self.telemetry is not None:
            event = {"t": now, "peer": pid, "bits": len(unique)}
            if self.k > 1:
                event["source"] = source_id
            self.telemetry.emit("query", event)
            self.telemetry.add("queries", 1, {"peer": pid})
        fault = self.faults[source_id]
        active = now >= fault.onset
        if active:
            view = fault.view_for(pid)
            if view is None:
                view = self._views[source_id]
        else:
            view = self.data
        values = dict(zip(unique, view.get_many(unique)))
        response = SourceResponse(sender=SOURCE_ID, request_id=request_id,
                                  values=values)
        latency = self.adversary.query_latency(pid, now)
        if active:
            if fault.withholding:
                latency = WITHHOLD
            elif (fault.latency_factor != 1.0
                  and isinstance(latency, (int, float))):
                latency = latency * fault.latency_factor
        self.network.deliver_direct(pid, response, latency)

    def request_segment(self, pid: int, request_id: int,
                        lo: int, hi: int) -> None:
        """Serve a segment query ``[lo, hi)`` (endpoint 0)."""
        check_range("segment query", lo, hi, len(self.data))
        self.request_bits(pid, request_id, range(lo, hi))

    # -- test/bench conveniences (no accounting side effects) ----------------

    def peek(self, index: int) -> int:
        """Read a truth bit without charging anyone (test helper)."""
        return self.data[index]

    def peek_segment(self, lo: int, hi: int) -> str:
        """Read a truth segment without charging anyone (test helper)."""
        return self.data.segment(lo, hi)

    def peek_view(self, source_id: int, index: int) -> int:
        """Read endpoint ``source_id``'s active view (test helper)."""
        return self._views[source_id][index]
