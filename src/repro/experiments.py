"""Declarative experiment specifications.

The benchmark harness and downstream studies keep re-assembling the
same quadruple — protocol + parameters, fault setup, network shape,
sweep axis.  :class:`ExperimentSpec` makes that quadruple a value:
validatable, hashable into a seed, and runnable, so an experiment is
*data* instead of a bespoke script::

    spec = ExperimentSpec(
        protocol="crash-multi", n=16, ell=8192,
        fault_model="crash", beta=0.5, repeats=3)
    outcome = run_experiment(spec)
    print(outcome.mean_query_complexity, outcome.success_rate)

    for point in sweep_experiment(spec, axis="beta",
                                  values=[0.1, 0.3, 0.5, 0.7]):
        print(point.spec.beta, point.mean_query_complexity)

Both entry points accept ``workers=`` (process-parallel execution; see
:mod:`repro.execution`) and ``cache=`` (on-disk outcome reuse).  Every
repeat is seeded by :meth:`ExperimentSpec.seed_for`, so outcomes are a
pure function of the spec and identical at any worker count::

    outcome = run_experiment(spec, workers=4, cache=True)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adversary import (
    ByzantineAdversary,
    ComposedAdversary,
    CrashAdversary,
    EquivocateStrategy,
    NullAdversary,
    PerPeerStrategy,
    SelectiveSilenceStrategy,
    SilentStrategy,
    UniformRandomDelay,
    WrongBitsStrategy,
)
from repro.adversary.dynamic import DynamicByzantineAdversary
from repro.execution.cache import canonical_json
from repro.execution.retry import TaskFailure
from repro.protocols import get
from repro.sim import run_download
from repro.util.rng import derive_seed
from repro.util.validation import check_fraction, check_positive

_FAULT_MODELS = ("none", "crash", "byzantine", "dynamic")
_NETWORKS = ("synchronous", "asynchronous")
_STRATEGIES = {
    "wrong-bits": WrongBitsStrategy,
    "equivocate": EquivocateStrategy,
    "silent": SilentStrategy,
    "selective-silence": SelectiveSilenceStrategy,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described experiment configuration."""

    protocol: str
    n: int
    ell: int
    fault_model: str = "none"
    beta: float = 0.0
    strategy: str = "wrong-bits"
    network: str = "asynchronous"
    protocol_params: dict = field(default_factory=dict)
    repeats: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        get(self.protocol)  # raises early for unknown names
        check_positive("n", self.n)
        check_positive("ell", self.ell)
        check_fraction("beta", self.beta, inclusive_high=False)
        check_positive("repeats", self.repeats)
        if self.fault_model not in _FAULT_MODELS:
            raise ValueError(f"fault_model must be one of {_FAULT_MODELS}, "
                             f"got {self.fault_model!r}")
        if self.network not in _NETWORKS:
            raise ValueError(f"network must be one of {_NETWORKS}, "
                             f"got {self.network!r}")
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of "
                             f"{sorted(_STRATEGIES)}, got {self.strategy!r}")
        if self.fault_model != "none" and self.beta <= 0:
            raise ValueError("faulty models need beta > 0")

    @property
    def t(self) -> int:
        """The fault budget this spec implies."""
        return int(self.beta * self.n)

    def build_adversary(self):
        """Fresh adversary object for one run of this spec."""
        latency = (NullAdversary() if self.network == "synchronous"
                   else UniformRandomDelay())
        if self.fault_model == "none" or self.beta <= 0:
            return latency
        strategy = _STRATEGIES[self.strategy]
        if self.fault_model == "crash":
            faults = CrashAdversary(crash_fraction=self.beta)
        elif self.fault_model == "byzantine":
            faults = ByzantineAdversary(
                fraction=self.beta,
                strategy_factory=PerPeerStrategy(strategy))
        else:
            faults = DynamicByzantineAdversary(
                fraction=self.beta,
                strategy_factory=PerPeerStrategy(strategy))
        return ComposedAdversary(faults=faults, latency=latency)

    def peer_factory(self):
        """Bound peer factory for this spec."""
        return get(self.protocol).factory(**self.protocol_params)

    def seed_for(self, repeat: int) -> int:
        """Stable per-repeat seed derived from the spec identity.

        ``repeats`` is deliberately omitted (adding repeats must extend
        a sweep, not reseed it); ``protocol_params`` goes through the
        cache's :func:`~repro.execution.cache.canonical_json` — the
        same canonical form the cache key hashes — so seed identity and
        cache identity cannot diverge, whatever the params' nesting or
        insertion order.
        """
        identity = (f"{self.protocol}|{self.n}|{self.ell}|"
                    f"{self.fault_model}|{self.beta}|{self.strategy}|"
                    f"{self.network}|{canonical_json(self.protocol_params)}")
        return derive_seed(self.base_seed, f"{identity}#{repeat}")


@dataclass(frozen=True)
class ExperimentOutcome:
    """Aggregated result of one spec's repeats.

    ``runs`` counts *attempted* repeats (``spec.repeats``); repeats
    that failed every retry appear in ``failed_runs``/``failures``
    instead of the means, so a partially-degraded sweep still reports
    every number it could compute — with provenance for the rest.
    A failed repeat is not a correct one, so ``success_rate`` drops.
    """

    spec: ExperimentSpec
    runs: int
    correct_runs: int
    mean_query_complexity: float
    max_query_complexity: int
    mean_message_complexity: float
    mean_time_complexity: float
    #: Repeats that exhausted their retry budget (graceful mode).
    failed_runs: int = 0
    #: One :class:`~repro.execution.retry.TaskFailure` per failed repeat.
    failures: tuple = ()

    @property
    def success_rate(self) -> float:
        return self.correct_runs / self.runs

    @property
    def completed_runs(self) -> int:
        """Repeats that produced a measurement."""
        return self.runs - self.failed_runs


@dataclass(frozen=True)
class RepeatRecord:
    """Measurements of one repeat — the unit shipped between processes."""

    queries: int
    messages: int
    time: float
    correct: bool


def execute_repeat(spec: ExperimentSpec, repeat: int) -> RepeatRecord:
    """Run repeat number ``repeat`` of ``spec`` from scratch.

    Pure in ``(spec, repeat)``: the adversary and peer factory are
    rebuilt here and the seed comes from :meth:`ExperimentSpec.seed_for`,
    so the same call yields the same record in any process.
    """
    result = run_download(
        n=spec.n, ell=spec.ell,
        peer_factory=spec.peer_factory(),
        adversary=spec.build_adversary(),
        t=spec.t, seed=spec.seed_for(repeat))
    return RepeatRecord(
        queries=result.report.query_complexity,
        messages=result.report.message_complexity,
        time=result.report.time_complexity,
        correct=bool(result.download_correct))


def aggregate_outcome(spec: ExperimentSpec,
                      records: Iterable) -> ExperimentOutcome:
    """Fold per-repeat records (in repeat order) into one outcome.

    Aggregation always happens here, in the parent process and in
    repeat order, so serial and parallel execution produce bit-equal
    floats.  ``records`` may mix :class:`RepeatRecord` with
    :class:`~repro.execution.retry.TaskFailure` entries (graceful
    degradation): failures are excluded from the means and reported via
    ``failed_runs``/``failures``; with zero completed repeats every
    mean is 0.0.
    """
    records = list(records)
    failures = tuple(record for record in records
                     if isinstance(record, TaskFailure))
    measured = [record for record in records
                if not isinstance(record, TaskFailure)]
    queries = [record.queries for record in measured]
    messages = [record.messages for record in measured]
    times = [record.time for record in measured]
    count = len(measured)
    return ExperimentOutcome(
        spec=spec,
        runs=spec.repeats,
        correct_runs=sum(record.correct for record in measured),
        mean_query_complexity=sum(queries) / count if count else 0.0,
        max_query_complexity=max(queries) if count else 0,
        mean_message_complexity=sum(messages) / count if count else 0.0,
        mean_time_complexity=sum(times) / count if count else 0.0,
        failed_runs=len(failures),
        failures=failures,
    )


def run_experiment(spec: ExperimentSpec, *, workers: int = 1,
                   cache=None, journal=None, policy=None,
                   strict: bool = False) -> ExperimentOutcome:
    """Execute every repeat of ``spec`` and aggregate.

    Args:
        workers: processes to fan repeats over; ``1`` runs in-process.
        cache: ``True`` for the default on-disk cache, a directory
            path, a :class:`~repro.execution.ResultCache`, or ``None``
            to disable (see :func:`repro.execution.resolve_cache`).
        journal: ``True`` for the default checkpoint journal, a file
            path, a :class:`~repro.execution.SweepJournal`, or ``None``
            to disable — completed repeats are checkpointed and
            replayed on restart (see
            :func:`repro.execution.resolve_journal`).
        policy: :class:`~repro.execution.RetryPolicy` wrapped around
            every repeat (default: 3 attempts, no timeout).
        strict: re-raise the first repeat error that survives its retry
            budget instead of degrading it into the outcome's
            ``failed_runs``/``failures`` fields.
    """
    from repro.execution import (ParallelRunner, resolve_cache,
                                 resolve_journal)
    runner = ParallelRunner(workers=workers, cache=resolve_cache(cache),
                            journal=resolve_journal(journal),
                            policy=policy, strict=strict)
    return runner.run(spec)


def sweep_points(spec: ExperimentSpec, *, axis: str,
                 values: Iterable) -> list[ExperimentSpec]:
    """The specs a sweep visits: ``spec`` with ``axis`` set per value."""
    if axis not in {f.name for f in dataclasses.fields(ExperimentSpec)}:
        raise ValueError(f"unknown sweep axis {axis!r}")
    return [dataclasses.replace(spec, **{axis: value}) for value in values]


def sweep_experiment(spec: ExperimentSpec, *, axis: str, values: Iterable,
                     workers: int = 1, cache=None, journal=None,
                     policy=None,
                     strict: bool = False) -> list[ExperimentOutcome]:
    """Run ``spec`` once per value of ``axis`` (any spec field).

    With ``workers > 1`` every repeat of every point shares one process
    pool; with a cache only points absent from it are computed; with a
    journal an interrupted sweep resumes from its completed repeats.
    Each point's outcome depends only on its own spec, never on the
    sweep order.  ``journal``/``policy``/``strict`` are as in
    :func:`run_experiment`.
    """
    from repro.execution import (ParallelRunner, resolve_cache,
                                 resolve_journal)
    runner = ParallelRunner(workers=workers, cache=resolve_cache(cache),
                            journal=resolve_journal(journal),
                            policy=policy, strict=strict)
    return runner.sweep(spec, axis=axis, values=values)


def outcomes_table(outcomes: Iterable[ExperimentOutcome],
                   axis: Optional[str] = None) -> str:
    """Fixed-width table of sweep outcomes (ready to print)."""
    rows = []
    for outcome in outcomes:
        label = (str(getattr(outcome.spec, axis)) if axis
                 else outcome.spec.protocol)
        rows.append((label, outcome.mean_query_complexity,
                     outcome.mean_time_complexity,
                     f"{outcome.correct_runs}/{outcome.runs}"))
    label_width = max(len("value"), max(len(row[0]) for row in rows))
    lines = [f"{'value'.ljust(label_width)} | {'mean Q':>10} | "
             f"{'mean T':>8} | ok"]
    for label, mean_q, mean_t, ok in rows:
        lines.append(f"{label.ljust(label_width)} | {mean_q:>10.1f} | "
                     f"{mean_t:>8.2f} | {ok}")
    return "\n".join(lines)
