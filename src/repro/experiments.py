"""Declarative experiment specifications.

The benchmark harness and downstream studies keep re-assembling the
same quadruple — protocol + parameters, fault setup, network shape,
sweep axis.  :class:`ExperimentSpec` makes that quadruple a value:
validatable, hashable into a seed, and runnable, so an experiment is
*data* instead of a bespoke script::

    spec = ExperimentSpec(
        protocol="crash-multi", n=16, ell=8192,
        fault_model="crash", beta=0.5, repeats=3)
    outcome = run_experiment(spec)
    print(outcome.mean_query_complexity, outcome.success_rate)

    for point in sweep_experiment(spec, axis="beta",
                                  values=[0.1, 0.3, 0.5, 0.7]):
        print(point.spec.beta, point.mean_query_complexity)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adversary import (
    ByzantineAdversary,
    ComposedAdversary,
    CrashAdversary,
    EquivocateStrategy,
    NullAdversary,
    SelectiveSilenceStrategy,
    SilentStrategy,
    UniformRandomDelay,
    WrongBitsStrategy,
)
from repro.adversary.dynamic import DynamicByzantineAdversary
from repro.protocols import get
from repro.sim import run_download
from repro.util.rng import derive_seed
from repro.util.validation import check_fraction, check_positive

_FAULT_MODELS = ("none", "crash", "byzantine", "dynamic")
_NETWORKS = ("synchronous", "asynchronous")
_STRATEGIES = {
    "wrong-bits": WrongBitsStrategy,
    "equivocate": EquivocateStrategy,
    "silent": SilentStrategy,
    "selective-silence": SelectiveSilenceStrategy,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described experiment configuration."""

    protocol: str
    n: int
    ell: int
    fault_model: str = "none"
    beta: float = 0.0
    strategy: str = "wrong-bits"
    network: str = "asynchronous"
    protocol_params: dict = field(default_factory=dict)
    repeats: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        get(self.protocol)  # raises early for unknown names
        check_positive("n", self.n)
        check_positive("ell", self.ell)
        check_fraction("beta", self.beta, inclusive_high=False)
        check_positive("repeats", self.repeats)
        if self.fault_model not in _FAULT_MODELS:
            raise ValueError(f"fault_model must be one of {_FAULT_MODELS}, "
                             f"got {self.fault_model!r}")
        if self.network not in _NETWORKS:
            raise ValueError(f"network must be one of {_NETWORKS}, "
                             f"got {self.network!r}")
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of "
                             f"{sorted(_STRATEGIES)}, got {self.strategy!r}")
        if self.fault_model != "none" and self.beta <= 0:
            raise ValueError("faulty models need beta > 0")

    @property
    def t(self) -> int:
        """The fault budget this spec implies."""
        return int(self.beta * self.n)

    def build_adversary(self):
        """Fresh adversary object for one run of this spec."""
        latency = (NullAdversary() if self.network == "synchronous"
                   else UniformRandomDelay())
        if self.fault_model == "none" or self.beta <= 0:
            return latency
        strategy = _STRATEGIES[self.strategy]
        if self.fault_model == "crash":
            faults = CrashAdversary(crash_fraction=self.beta)
        elif self.fault_model == "byzantine":
            faults = ByzantineAdversary(
                fraction=self.beta,
                strategy_factory=lambda pid: strategy())
        else:
            faults = DynamicByzantineAdversary(
                fraction=self.beta,
                strategy_factory=lambda pid: strategy())
        return ComposedAdversary(faults=faults, latency=latency)

    def peer_factory(self):
        """Bound peer factory for this spec."""
        return get(self.protocol).factory(**self.protocol_params)

    def seed_for(self, repeat: int) -> int:
        """Stable per-repeat seed derived from the spec identity."""
        identity = (f"{self.protocol}|{self.n}|{self.ell}|"
                    f"{self.fault_model}|{self.beta}|{self.strategy}|"
                    f"{self.network}|{sorted(self.protocol_params.items())}")
        return derive_seed(self.base_seed, f"{identity}#{repeat}")


@dataclass(frozen=True)
class ExperimentOutcome:
    """Aggregated result of one spec's repeats."""

    spec: ExperimentSpec
    runs: int
    correct_runs: int
    mean_query_complexity: float
    max_query_complexity: int
    mean_message_complexity: float
    mean_time_complexity: float

    @property
    def success_rate(self) -> float:
        return self.correct_runs / self.runs


def run_experiment(spec: ExperimentSpec) -> ExperimentOutcome:
    """Execute every repeat of ``spec`` and aggregate."""
    queries: list[int] = []
    messages: list[int] = []
    times: list[float] = []
    correct = 0
    for repeat in range(spec.repeats):
        result = run_download(
            n=spec.n, ell=spec.ell,
            peer_factory=spec.peer_factory(),
            adversary=spec.build_adversary(),
            t=spec.t, seed=spec.seed_for(repeat))
        queries.append(result.report.query_complexity)
        messages.append(result.report.message_complexity)
        times.append(result.report.time_complexity)
        correct += result.download_correct
    return ExperimentOutcome(
        spec=spec,
        runs=spec.repeats,
        correct_runs=correct,
        mean_query_complexity=sum(queries) / len(queries),
        max_query_complexity=max(queries),
        mean_message_complexity=sum(messages) / len(messages),
        mean_time_complexity=sum(times) / len(times),
    )


def sweep_experiment(spec: ExperimentSpec, *, axis: str,
                     values: Iterable) -> list[ExperimentOutcome]:
    """Run ``spec`` once per value of ``axis`` (any spec field)."""
    if axis not in {f.name for f in dataclasses.fields(ExperimentSpec)}:
        raise ValueError(f"unknown sweep axis {axis!r}")
    outcomes = []
    for value in values:
        point = dataclasses.replace(spec, **{axis: value})
        outcomes.append(run_experiment(point))
    return outcomes


def outcomes_table(outcomes: Iterable[ExperimentOutcome],
                   axis: Optional[str] = None) -> str:
    """Fixed-width table of sweep outcomes (ready to print)."""
    rows = []
    for outcome in outcomes:
        label = (str(getattr(outcome.spec, axis)) if axis
                 else outcome.spec.protocol)
        rows.append((label, outcome.mean_query_complexity,
                     outcome.mean_time_complexity,
                     f"{outcome.correct_runs}/{outcome.runs}"))
    label_width = max(len("value"), max(len(row[0]) for row in rows))
    lines = [f"{'value'.ljust(label_width)} | {'mean Q':>10} | "
             f"{'mean T':>8} | ok"]
    for label, mean_q, mean_t, ok in rows:
        lines.append(f"{label.ljust(label_width)} | {mean_q:>10.1f} | "
                     f"{mean_t:>8.2f} | {ok}")
    return "\n".join(lines)
