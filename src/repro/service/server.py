"""The stdlib HTTP front door: asyncio streams, no dependencies.

``repro serve`` must run anywhere the engine runs, so the default
transport is a small hand-rolled HTTP/1.1 server on
``asyncio.start_server`` — the same event loop the
:class:`~repro.service.queue.JobQueue` schedules on, so there is no
cross-thread locking anywhere in the service.  It speaks exactly the
subset the API needs (GET/POST/DELETE, JSON bodies, SSE responses,
one request per connection) and is deliberately boring: operators who
want a production ASGI stack install the ``serve`` extra and mount
:func:`repro.service.api.fastapi_app` instead.

:func:`run_server` is the CLI entry point: build the store/queue/API,
bind, optionally write the bound port to a file (``--port-file`` — the
reliable way for scripts and CI to address a ``--port 0`` server),
and serve until cancelled.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.service.api import EventStream, Response, ServiceAPI, format_sse
from repro.service.queue import JobQueue
from repro.service.store import JobStore

__all__ = ["ServiceServer", "run_server"]

#: Request safety limits (one misbehaving client must not OOM the box).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 409: "Conflict", 413: "Payload Too Large",
            500: "Internal Server Error"}


class ServiceServer:
    """One bound server: a queue, its API, and an asyncio listener."""

    def __init__(self, queue: JobQueue, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.queue = queue
        self.api = ServiceAPI(queue)
        self.host = host
        self.port = port  # rewritten to the bound port by start()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Start the queue's workers, then bind and listen."""
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- one connection = one request --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            try:
                result = self.api.handle(method, path, query, body)
            except Exception as exc:  # a handler bug must not kill the server
                result = Response.error(500, f"{type(exc).__name__}: {exc}")
            if isinstance(result, EventStream):
                await self._write_sse(writer, result)
            else:
                await self._write_response(writer, result)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # the client went away; nothing to clean up but the socket
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        header_blob = await reader.readuntil(b"\r\n\r\n")
        if len(header_blob) > MAX_HEADER_BYTES:
            return None
        lines = header_blob.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method, split.path, parse_qs(split.query), body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: Response) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = (f"HTTP/1.1 {response.status} {reason}\r\n"
                f"Content-Type: {response.content_type}\r\n"
                f"Content-Length: {len(response.body)}\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()

    async def _write_sse(self, writer: asyncio.StreamWriter,
                         stream: EventStream) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        async for seq, entry in self.queue.stream(stream.job_id,
                                                  stream.after):
            writer.write(format_sse(seq, entry))
            await writer.drain()


async def run_server(data_dir, *, host: str = "127.0.0.1", port: int = 0,
                     pool: int = 2, pool_mode: str = "thread",
                     cache=True, port_file=None,
                     ready: Optional[asyncio.Event] = None,
                     log=print) -> None:
    """Build store + queue + server and serve until cancelled.

    ``port_file`` (if given) receives the bound port as text once the
    listener is up — write-then-read is how ``--port 0`` callers
    (doc snippets, CI, the bench) rendezvous with the server.
    ``ready`` (if given) is set at the same moment, for in-process
    callers (tests) that prefer an event to a file.
    """
    store = JobStore(data_dir)
    queue = JobQueue(store, pool=pool, pool_mode=pool_mode, cache=cache)
    server = ServiceServer(queue, host=host, port=port)
    await server.start()
    try:
        if port_file is not None:
            Path(port_file).write_text(f"{server.port}\n", encoding="utf-8")
        if ready is not None:
            ready.set()
        log(f"repro serve: listening on http://{server.host}:{server.port} "
            f"(pool={pool} mode={pool_mode}, data={store.root})")
        recovered = [job for job in queue.jobs() if not job.terminal]
        if recovered:
            log(f"repro serve: resumed {len(recovered)} unfinished "
                f"job(s) from the journal")
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
