"""The browser dashboard and its server-side render helpers.

The dashboard is one self-contained HTML page (no external assets, no
JS dependencies — it must work from ``curl http://host/ > page.html``
on an air-gapped operator box) that polls the JSON API and subscribes
to each job's SSE stream.  Everything *computed* stays server-side in
this module, reusing the ``repro trace`` internals:

- :func:`render_job_timeline` is the service twin of
  :func:`repro.obs.trace_cli.render_timeline`: one lane per job on a
  shared wall-clock axis, ticks where progress landed.
- :func:`job_folded_stacks` aggregates ``job_progress`` events into
  the same folded flamegraph format as
  :func:`repro.obs.trace_cli.folded_stacks` /
  :func:`repro.profiling.folded_lines` — ``serve;<job>;point-N``
  weighted by task wall-clock milliseconds — so a job's flame answers
  "where did the pool's time go" and the text form feeds straight into
  ``flamegraph.pl`` or speedscope.

Both helpers consume the job event envelope (``events.jsonl`` or the
in-memory SSE buffer) — plain schema-v1 events, nothing private.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.profiling import folded_lines

__all__ = [
    "dashboard_page",
    "job_folded_stacks",
    "render_job_timeline",
]

#: Lane glyphs for the text timeline, by event kind.
_TIMELINE_MARKS = {
    "job_submitted": "S",
    "job_started": ">",
    "job_progress": "#",
    "job_dedup": "=",
    "job_done": "D",
    "job_failed": "X",
    "job_cancelled": "C",
}


def job_folded_stacks(events: Sequence[dict]) -> dict[str, int]:
    """Fold a job event stream into flamegraph stacks.

    Each ``job_progress`` becomes ``serve;<job>;point-N`` weighted by
    the task's wall-clock milliseconds (minimum 1, so instant sim
    tasks still show up); replayed and cache-answered work appears as
    ``...;replayed`` / ``...;cached`` weighted by task count, making
    "resume did the saving" visible in the flame.
    """
    stacks: dict[str, int] = {}

    def bump(stack: str, amount: int) -> None:
        stacks[stack] = stacks.get(stack, 0) + amount

    for entry in events:
        kind = entry.get("event")
        job = entry.get("job", "?")
        if kind == "job_progress":
            wall_ms = int(float(entry.get("wall_s") or 0.0) * 1000)
            bump(f"serve;{job};point-{entry.get('point', 0)}",
                 max(wall_ms, 1))
        elif kind == "job_started":
            if entry.get("replayed"):
                bump(f"serve;{job};replayed", int(entry["replayed"]))
            if entry.get("cache_hits"):
                bump(f"serve;{job};cached", int(entry["cache_hits"]))
    return stacks


def job_flame_text(events: Sequence[dict]) -> str:
    """The folded-stacks text form (``stack weight`` per line)."""
    return "\n".join(folded_lines(job_folded_stacks(events)))


def render_job_timeline(events: Sequence[dict], *, width: int = 72,
                        now: Optional[float] = None) -> str:
    """One lane per job on a shared wall-clock axis.

    ``events`` may interleave many jobs (the queue's buffers
    concatenated); ``now`` extends the axis to the present so running
    jobs visibly trail off.  Returns a ``repro trace``-style text
    block, safe for both terminals and the dashboard's ``<pre>``.
    """
    if width < 16:
        raise ValueError(f"width must be >= 16, got {width!r}")
    per_job: dict[str, list[dict]] = {}
    for entry in events:
        if entry.get("event") in _TIMELINE_MARKS:
            per_job.setdefault(entry.get("job", "?"), []).append(entry)
    if not per_job:
        return "(no job events)"
    times = [entry["t"] for lane in per_job.values() for entry in lane]
    t_min = min(times)
    t_max = max(times)
    if now is not None:
        t_max = max(t_max, now)
    span = max(t_max - t_min, 1e-9)
    label_w = max(len(job) for job in per_job)
    lines = [f"{'job'.ljust(label_w)} | {'t=%.2fs' % t_min} .. "
             f"t={t_max:.2f}s"]
    for job, lane in per_job.items():
        cells = [" "] * width
        state = "…"
        for entry in sorted(lane, key=lambda item: item["t"]):
            column = min(int((entry["t"] - t_min) / span * (width - 1)),
                         width - 1)
            mark = _TIMELINE_MARKS[entry["event"]]
            if cells[column] == " " or mark != "#":
                cells[column] = mark
            if entry["event"] in ("job_done", "job_failed",
                                  "job_cancelled"):
                state = mark
        lines.append(f"{job.ljust(label_w)} |{''.join(cells)}| {state}")
    lines.append(f"{''.ljust(label_w)} | marks: S submit, > start, "
                 "# progress, = dedup, D done, X failed, C cancelled")
    return "\n".join(lines)


def dashboard_page() -> str:
    """The single-file dashboard HTML (served at ``GET /``)."""
    return _PAGE


_PAGE = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve — jobs</title>
<style>
  :root { color-scheme: dark; }
  body { font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #14161a; color: #d7dae0; margin: 1.5rem; }
  h1 { font-size: 1.15rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
  small, .dim { color: #8b93a1; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .3rem .6rem;
           border-bottom: 1px solid #272b33; }
  tr.sel { background: #1d222d; }
  .bar { background: #272b33; border-radius: 3px; height: .7rem;
         width: 10rem; overflow: hidden; }
  .bar > div { background: #4c9e6e; height: 100%; }
  .state-done .bar > div { background: #4c9e6e; }
  .state-running .bar > div { background: #4c7fd0; }
  .state-failed .bar > div { background: #c0504d; }
  .state-cancelled .bar > div { background: #8b93a1; }
  .pill { padding: 0 .45rem; border-radius: 999px; font-size: .8rem; }
  .pill.done { background: #24432f; } .pill.running { background: #22324d; }
  .pill.pending { background: #3b3524; } .pill.failed { background: #472222; }
  .pill.cancelled { background: #32353b; }
  button { font: inherit; background: #272b33; color: inherit;
           border: 1px solid #3a3f49; border-radius: 4px;
           padding: .1rem .5rem; cursor: pointer; }
  button:hover { background: #323741; }
  pre { background: #101216; padding: .8rem; border-radius: 6px;
        overflow-x: auto; }
  #flame div.frame { height: 1.1rem; background: #b3552e; margin: 1px 0;
        border-radius: 2px; font-size: .75rem; color: #fff;
        padding-left: .3rem; overflow: hidden; white-space: nowrap; }
  #log { max-height: 16rem; overflow-y: auto; }
</style>
</head>
<body>
<h1>repro serve <small id="stats">connecting…</small></h1>
<table id="jobs">
  <thead><tr><th>job</th><th>state</th><th>client</th><th>prio</th>
  <th>progress</th><th>correct</th><th>subs</th><th></th></tr></thead>
  <tbody></tbody>
</table>
<h2>timeline <small class="dim">all jobs, wall clock</small></h2>
<pre id="timeline">(loading)</pre>
<h2>job detail <small class="dim" id="selname">click a job row</small></h2>
<div id="flame"></div>
<pre id="log"></pre>
<script>
"use strict";
let selected = null, source = null;
const $ = (id) => document.getElementById(id);

async function getJSON(url) {
  const resp = await fetch(url);
  if (!resp.ok) throw new Error(url + " -> " + resp.status);
  return resp.json();
}

function progressCell(job) {
  const pct = job.total ? Math.round(100 * job.done / job.total) : 0;
  return `<div class="bar"><div style="width:${pct}%"></div></div>` +
         `<small>${job.done}/${job.total}</small>`;
}

async function refresh() {
  try {
    const stats = await getJSON("/api/stats");
    $("stats").textContent =
      `pool=${stats.pool}(${stats.pool_mode}) jobs=${stats.jobs} ` +
      `dedup=${stats.stats.dedup_hits} cache=${stats.stats.cache_hits} ` +
      `tasks=${stats.stats.tasks_executed}`;
    const jobs = (await getJSON("/api/jobs")).jobs;
    const body = $("jobs").tBodies[0];
    body.innerHTML = "";
    for (const job of jobs) {
      const row = body.insertRow();
      row.className = "state-" + job.state +
                      (job.id === selected ? " sel" : "");
      row.innerHTML =
        `<td>${job.id}</td>` +
        `<td><span class="pill ${job.state}">${job.state}</span></td>` +
        `<td>${job.client}</td><td>${job.priority}</td>` +
        `<td>${progressCell(job)}</td>` +
        `<td>${job.correct === null ? "—" : job.correct}</td>` +
        `<td>${job.submissions}</td>` +
        `<td><button data-id="${job.id}">cancel</button></td>`;
      row.addEventListener("click", () => select(job.id));
      row.querySelector("button").addEventListener("click", (ev) => {
        ev.stopPropagation();
        fetch("/api/jobs/" + job.id + "/cancel", {method: "POST"});
      });
    }
    $("timeline").textContent =
      await (await fetch("/api/timeline")).text();
  } catch (err) {
    $("stats").textContent = "offline: " + err.message;
  }
}

function renderFlame(text) {
  const rows = text.trim() ? text.trim().split("\\n") : [];
  const frames = rows.map((line) => {
    const cut = line.lastIndexOf(" ");
    return {stack: line.slice(0, cut), weight: +line.slice(cut + 1)};
  }).sort((a, b) => b.weight - a.weight).slice(0, 24);
  const top = frames.reduce((acc, f) => Math.max(acc, f.weight), 1);
  $("flame").innerHTML = frames.map((f) =>
    `<div class="frame" style="width:${Math.max(
       2, 100 * f.weight / top)}%">${f.stack} (${f.weight})</div>`
  ).join("");
}

function select(id) {
  selected = id;
  $("selname").textContent = id + " — live events";
  $("log").textContent = "";
  if (source) source.close();
  source = new EventSource("/api/jobs/" + id + "/events");
  source.onmessage = (msg) => {
    $("log").textContent += msg.data + "\\n";
    $("log").scrollTop = $("log").scrollHeight;
  };
  source.onerror = () => source.close();  // job finished: stream ends
  fetch("/api/jobs/" + id + "/flame")
    .then((resp) => resp.text()).then(renderFlame);
}

refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""
