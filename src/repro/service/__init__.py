"""Download-as-a-service: the ``repro serve`` job API.

The service layer turns the experiments engine into a long-lived
multi-tenant system: clients submit experiment/sweep *jobs* over HTTP,
one shared worker pool executes them with priority + fair scheduling,
identical concurrent requests dedup into a single execution, progress
streams out as Server-Sent Events, and a journal-backed store resumes
interrupted jobs bit-identically after a server restart.

Layering (each module only looks down):

- :mod:`repro.service.jobs` — the job model (content-addressed ids,
  the lifecycle state machine, JSON round-trip).
- :mod:`repro.service.store` — the on-disk job store (records,
  events, journals, results).
- :mod:`repro.service.queue` — the asyncio scheduler over one shared
  executor pool (dedup, fairness, cancel, resume, retries, events).
- :mod:`repro.service.api` — transport-agnostic routing and JSON
  shapes (+ the optional FastAPI adapter).
- :mod:`repro.service.server` — the dependency-free asyncio HTTP/SSE
  server behind ``repro serve``.
- :mod:`repro.service.dashboard` — the single-file browser dashboard
  and its ``repro trace``-style timeline/flame renderers.
- :mod:`repro.service.client` — the blocking stdlib client behind
  ``repro submit/status/result/cancel`` and the load bench.

Operator guide: docs/SERVICE.md.
"""

from repro.service.api import ServiceAPI, fastapi_app
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (Job, JobRequest, PRIORITY_DEFAULT, STATES,
                                TERMINAL, job_from_dict, job_key,
                                job_to_dict)
from repro.service.queue import JobQueue, ServiceStats
from repro.service.server import ServiceServer, run_server
from repro.service.store import JobStore

__all__ = [
    "Job",
    "JobQueue",
    "JobRequest",
    "JobStore",
    "PRIORITY_DEFAULT",
    "STATES",
    "ServiceAPI",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceStats",
    "TERMINAL",
    "fastapi_app",
    "job_from_dict",
    "job_key",
    "job_to_dict",
    "run_server",
]
