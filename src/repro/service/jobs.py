"""The service's job model: one content-addressed unit of work.

A *job* is an :class:`~repro.experiments.ExperimentSpec` plus an
optional sweep axis — exactly what ``repro sweep`` runs from the shell,
reified as a value the HTTP API can submit, query, cancel, and dedup:

- **Identity is content.**  :func:`job_key` hashes the same canonical
  form the result cache hashes (:func:`~repro.execution.cache.
  spec_cache_key`, which already strips default fields so historical
  identities are preserved), plus the sweep axis/values.  Two clients
  submitting the same experiment therefore *name the same job* — the
  queue coalesces them into one execution and both read one result.
  The cache's ``CODE_VERSION`` salt is part of the key, so a code
  change that invalidates cached outcomes also mints fresh job ids.
- **States form a machine**, not a set: ``pending -> running ->
  {done, failed, cancelled}`` (cancel is also legal from ``pending``).
  :meth:`Job.transition` enforces it — an illegal hop is a bug in the
  queue, never silent state corruption.
- **Jobs round-trip as plain JSON** (no pickle), so the on-disk store
  is diffable and a restarted server reloads every job it was running.

Timestamps are wall-clock epoch seconds (a service is not a seeded
experiment; its *results* are deterministic, its schedule is not).
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.execution.cache import CODE_VERSION, canonical_json, spec_cache_key
from repro.experiments import ExperimentSpec

__all__ = [
    "Job",
    "JobRequest",
    "PRIORITY_DEFAULT",
    "STATES",
    "TERMINAL",
    "job_from_dict",
    "job_key",
    "job_to_dict",
]

#: Lower runs first; ties are served fairly (round-robin).
PRIORITY_DEFAULT = 10

#: Legal job states, in lifecycle order.
STATES = ("pending", "running", "done", "failed", "cancelled")

#: States no job ever leaves (except via an explicit resubmit).
TERMINAL = ("done", "failed", "cancelled")

#: state -> states it may move to.
_TRANSITIONS = {
    "pending": ("running", "done", "failed", "cancelled"),
    "running": ("done", "failed", "cancelled"),
    "done": (),
    "failed": ("pending",),      # resubmit retries a failed job
    "cancelled": ("pending",),   # resubmit revives a cancelled job
}


@dataclass(frozen=True)
class JobRequest:
    """What a client asks for: a spec, an optional sweep, a priority.

    ``axis``/``values`` mirror ``sweep_experiment`` (both or neither);
    ``client`` is a free-form submitter label used only for fairness
    accounting and display.
    """

    spec: ExperimentSpec
    axis: Optional[str] = None
    values: tuple = ()
    priority: int = PRIORITY_DEFAULT
    client: str = "anonymous"

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if (self.axis is None) != (len(self.values) == 0):
            raise ValueError("axis and values must be given together")
        if self.axis is not None:
            fields = {f.name for f in dataclasses.fields(ExperimentSpec)}
            if self.axis not in fields:
                raise ValueError(f"unknown sweep axis {self.axis!r}")

    def points(self) -> list[ExperimentSpec]:
        """The specs this job executes, in sweep order."""
        if self.axis is None:
            return [self.spec]
        return [dataclasses.replace(self.spec, **{self.axis: value})
                for value in self.values]

    @property
    def total_tasks(self) -> int:
        """Every ``(point, repeat)`` the job could run."""
        return sum(point.repeats for point in self.points())


def job_key(request: JobRequest) -> str:
    """The content-addressed job id for ``request``.

    Built from the spec's cache key (already canonical and
    salt-versioned) plus the sweep shape.  ``priority`` and ``client``
    are deliberately excluded: *what* is computed addresses the job,
    not how urgently or for whom — that is what lets concurrent
    requests coalesce.
    """
    payload = canonical_json({
        "spec": spec_cache_key(request.spec),
        "axis": request.axis,
        "values": list(request.values),
    })
    digest = hashlib.sha256(f"{CODE_VERSION}\n{payload}".encode("utf-8"))
    return f"j{digest.hexdigest()[:16]}"


@dataclass
class Job:
    """One job's full lifecycle record (the HTTP API's resource)."""

    id: str
    request: JobRequest
    state: str = "pending"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Tasks settled so far (completed + failed repeats).
    done: int = 0
    #: Tasks that exhausted their retry budget.
    failed: int = 0
    #: Every ``(point, repeat)`` the job runs.
    total: int = 0
    #: All points fully correct — ``None`` until the job is done.
    correct: Optional[bool] = None
    #: Failure cause (``state == "failed"``).
    error: Optional[str] = None
    #: How many submissions coalesced into this execution.
    submissions: int = 1

    def __post_init__(self) -> None:
        if self.total == 0:
            self.total = self.request.total_tasks

    def transition(self, state: str) -> None:
        """Move to ``state``, enforcing the lifecycle machine."""
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal job transition {self.state!r} -> {state!r}")
        self.state = state
        now = time.time()
        if state == "running" and self.started_at is None:
            self.started_at = now
        if state in TERMINAL:
            self.finished_at = now
        if state == "pending":  # resubmit: reset the execution clock
            self.started_at = None
            self.finished_at = None
            self.done = 0
            self.failed = 0
            self.correct = None
            self.error = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL


def job_to_dict(job: Job) -> dict:
    """JSON-safe form of one job (the API's wire shape)."""
    return {
        "id": job.id,
        "state": job.state,
        "priority": job.request.priority,
        "client": job.request.client,
        "spec": dataclasses.asdict(job.request.spec),
        "axis": job.request.axis,
        "values": list(job.request.values),
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "done": job.done,
        "failed": job.failed,
        "total": job.total,
        "correct": job.correct,
        "error": job.error,
        "submissions": job.submissions,
    }


def job_from_dict(payload: dict) -> Job:
    """Inverse of :func:`job_to_dict` (spec validation included)."""
    request = JobRequest(
        spec=ExperimentSpec(**payload["spec"]),
        axis=payload.get("axis"),
        values=tuple(payload.get("values") or ()),
        priority=int(payload.get("priority", PRIORITY_DEFAULT)),
        client=str(payload.get("client", "anonymous")))
    job = Job(id=payload["id"], request=request,
              state=payload.get("state", "pending"),
              submitted_at=payload.get("submitted_at", 0.0),
              started_at=payload.get("started_at"),
              finished_at=payload.get("finished_at"),
              done=int(payload.get("done", 0)),
              failed=int(payload.get("failed", 0)),
              total=int(payload.get("total", 0)),
              correct=payload.get("correct"),
              error=payload.get("error"),
              submissions=int(payload.get("submissions", 1)))
    if job.state not in STATES:
        raise ValueError(f"unknown job state {job.state!r}")
    return job
