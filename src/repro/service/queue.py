"""The asyncio job queue: many jobs, one shared worker pool.

This is the multiplexing layer between the HTTP front door and the
experiments engine.  The schedulable unit is **one task** — a
``(point, repeat)`` pair, exactly the unit
:func:`~repro.experiments.execute_repeat` runs and the engine's
cache/journal layers checkpoint — so many concurrent jobs interleave
at task granularity over one fixed pool of workers instead of each
sweep monopolizing the machine:

- **Priority, then fairness.**  Every job carries a priority (lower
  runs first); among equal priorities the queue serves jobs
  round-robin, one task at a time, ordered by how many tasks each job
  has already been served (ties broken by admission order).  A burst
  of big jobs therefore cannot starve a small one at the same
  priority, and an urgent job overtakes at the next task boundary.
- **Content-addressed dedup.**  Jobs are named by
  :func:`~repro.service.jobs.job_key`; submitting an experiment that
  is pending, running, or done coalesces into the existing job — one
  execution, N readers of the same result object.  Below job-level
  dedup, each *point* also consults the engine's
  :class:`~repro.execution.cache.ResultCache`, so even a brand-new job
  skips points any previous job (or CLI sweep against the same cache
  dir) already computed.
- **Cancellation at task boundaries.**  Cancel drops every queued task
  immediately; in-flight tasks (pure functions, at most one per
  worker) finish and are discarded.
- **Journal-backed resume.**  Every completed repeat is checkpointed
  to the job's private :class:`~repro.execution.journal.SweepJournal`
  the moment it lands; a server killed mid-sweep re-admits its
  non-terminal jobs on restart and replays the journal, so the resumed
  job's outcomes are bit-identical to an uninterrupted run
  (aggregation always re-folds the full record list, in repeat order).
- **Retries.**  Failing tasks retry under the engine's
  :class:`~repro.execution.retry.RetryPolicy` with the same
  deterministic-jitter backoff, then degrade into structured
  ``failed_runs`` on the outcome — a failing repeat never wedges the
  queue.

Everything the queue does is narrated through schema-v1 ``job_*``
events (docs/OBSERVABILITY.md): buffered in memory for the SSE stream,
appended to the job's ``events.jsonl``, and mirrored to the
process-global telemetry backend.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional

from repro.execution.cache import ResultCache, resolve_cache
from repro.execution.retry import RetryPolicy, TaskFailure
from repro.experiments import (RepeatRecord, aggregate_outcome,
                               execute_repeat)
from repro.obs.telemetry import event as obs_event
from repro.service.jobs import Job, JobRequest, job_key
from repro.service.store import JobStore

__all__ = ["JobQueue", "ServiceStats"]

#: Worker-pool flavours: threads (cheap, default) or processes (true
#: CPU parallelism; tasks are picklable pure functions either way).
POOL_MODES = ("thread", "process")


@dataclass
class ServiceStats:
    """Counters for one :class:`JobQueue` instance."""

    submitted: int = 0      #: submit calls received
    accepted: int = 0       #: submissions that created a new job
    dedup_hits: int = 0     #: submissions coalesced into an existing job
    resubmitted: int = 0    #: failed/cancelled jobs revived by a submit
    tasks_executed: int = 0  #: engine executions (execute_repeat calls)
    tasks_failed: int = 0   #: tasks that exhausted their retry budget
    cache_hits: int = 0     #: points answered from the ResultCache
    journal_replayed: int = 0  #: repeats replayed from job journals
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in (
            "submitted", "accepted", "dedup_hits", "resubmitted",
            "tasks_executed", "tasks_failed", "cache_hits",
            "journal_replayed", "jobs_done", "jobs_failed",
            "jobs_cancelled")}


@dataclass
class _JobRun:
    """Execution state of one admitted job (queue-internal)."""

    job: Job
    points: list
    journal: object
    seq: int
    #: settled records keyed by ``(point index, repeat)``.
    records: dict = field(default_factory=dict)
    #: point index -> cache-hit outcome (skipped entirely).
    point_outcomes: dict = field(default_factory=dict)
    pending: deque = field(default_factory=deque)
    inflight: set = field(default_factory=set)
    #: tasks handed to workers so far (the fairness measure).
    served: int = 0

    @property
    def settled(self) -> bool:
        return not self.pending and not self.inflight


class JobQueue:
    """Admits, schedules, executes, and persists jobs.

    Args:
        store: the :class:`~repro.service.store.JobStore` holding every
            durable artifact (job records, events, journals, results).
        pool: worker count — the *one shared pool* every job's tasks
            multiplex over.
        pool_mode: ``"thread"`` (default) or ``"process"``.
        cache: engine result cache (``None`` disables; ``True`` uses
            ``<store root>/cache``; a path or
            :class:`~repro.execution.cache.ResultCache` passes through
            as in :func:`~repro.execution.cache.resolve_cache`).
        policy: per-task :class:`~repro.execution.retry.RetryPolicy`
            (default: 3 attempts, no timeout).

    All queue state is mutated on the event-loop thread only; the
    executor runs nothing but the pure ``execute_repeat``.
    """

    def __init__(self, store: JobStore, *, pool: int = 2,
                 pool_mode: str = "thread", cache=True,
                 policy: Optional[RetryPolicy] = None) -> None:
        if pool < 1:
            raise ValueError(f"pool must be >= 1, got {pool!r}")
        if pool_mode not in POOL_MODES:
            raise ValueError(f"pool_mode must be one of {POOL_MODES}, "
                             f"got {pool_mode!r}")
        self.store = store
        self.pool = pool
        self.pool_mode = pool_mode
        self.cache: Optional[ResultCache] = resolve_cache(
            store.cache_dir if cache is True else cache)
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = ServiceStats()
        self.started_at = time.time()
        self._epoch = time.monotonic()
        self._jobs: dict[str, Job] = {}
        self._runs: dict[str, _JobRun] = {}
        self._results: dict[str, list] = {}
        self._events: dict[str, list[dict]] = {}
        self._event_waiters: list[asyncio.Future] = []
        self._work_waiters: list[asyncio.Future] = []
        self._workers: list[asyncio.Task] = []
        self._executor = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._running = False
        self._admit_seq = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Recover persisted jobs and spin up the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._executor = self._build_executor()
        self._running = True
        self.recover()
        self._workers = [self._loop.create_task(self._worker())
                         for _ in range(self.pool)]

    async def close(self) -> None:
        """Stop workers and release the pool (jobs stay on disk)."""
        self._running = False
        self._notify(self._work_waiters)
        self._notify(self._event_waiters)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _build_executor(self):
        if self.pool_mode == "process":
            return ProcessPoolExecutor(max_workers=self.pool)
        return ThreadPoolExecutor(max_workers=self.pool,
                                  thread_name_prefix="repro-serve")

    def recover(self) -> None:
        """Reload persisted jobs; re-admit every non-terminal one.

        The re-admitted jobs replay their journals, so a server killed
        mid-sweep resumes from its last completed repeat.
        """
        for job in self.store.load_all():
            if job.id in self._jobs:
                continue
            self._jobs[job.id] = job
            self._events.setdefault(job.id, [])
            if not job.terminal:
                self._admit(job)

    # -- the public (API-facing) surface -----------------------------------------

    def submit(self, request: JobRequest) -> tuple[Job, bool]:
        """Admit ``request``; returns ``(job, created)``.

        ``created`` is ``False`` when the submission coalesced into an
        existing job (dedup) or revived a failed/cancelled one.
        """
        self.stats.submitted += 1
        job_id = job_key(request)
        existing = self._jobs.get(job_id)
        if existing is not None:
            existing.submissions += 1
            if existing.state in ("pending", "running", "done"):
                self.stats.dedup_hits += 1
                self._emit(existing, "job_dedup", state=existing.state)
                self.store.save_job(existing)
                return existing, False
            # failed/cancelled: a fresh submission revives the job.
            self.stats.resubmitted += 1
            existing.transition("pending")
            self._results.pop(job_id, None)
            self._emit(existing, "job_submitted",
                       priority=existing.request.priority,
                       points=len(existing.request.points()),
                       repeats=existing.request.spec.repeats,
                       client=request.client,
                       backend=existing.request.spec.backend)
            self._admit(existing)
            return existing, False
        job = Job(id=job_id, request=request)
        self.stats.accepted += 1
        self._jobs[job_id] = job
        self._events.setdefault(job_id, [])
        self.store.save_job(job)
        self._emit(job, "job_submitted", priority=request.priority,
                   points=len(request.points()),
                   repeats=request.spec.repeats, client=request.client,
                   backend=request.spec.backend)
        self._admit(job)
        return job, True

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job; pending tasks are dropped immediately.

        Terminal jobs are returned unchanged (cancel is idempotent);
        unknown ids return ``None``.
        """
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return job
        run = self._runs.pop(job_id, None)
        if run is not None:
            run.pending.clear()
        job.transition("cancelled")
        self.stats.jobs_cancelled += 1
        self._emit(job, "job_cancelled")
        self.store.save_job(job)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, oldest submission first."""
        return sorted(self._jobs.values(),
                      key=lambda job: (job.submitted_at, job.id))

    def result(self, job_id: str) -> Optional[list]:
        """A done job's outcomes (one per point), else ``None``.

        Coalesced submissions all receive the *same list object* while
        the server lives — dedup really is one execution, one result.
        """
        outcomes = self._results.get(job_id)
        if outcomes is None:
            outcomes = self.store.load_result(job_id)
            if outcomes is not None:
                self._results[job_id] = outcomes
        return self._results.get(job_id)

    def events(self, job_id: str) -> list[dict]:
        """The job's event envelope (this process's emissions)."""
        return list(self._events.get(job_id, ()))

    async def stream(self, job_id: str, after: int = 0):
        """Async-iterate ``(seq, event)`` pairs from position ``after``.

        Replays buffered events first, then live ones; ends when the
        job reaches a terminal state (the terminal event included).
        """
        while True:
            buffered = self._events.get(job_id, ())
            while after < len(buffered):
                yield after, buffered[after]
                after += 1
            job = self._jobs.get(job_id)
            if job is None or job.terminal or not self._running:
                return
            await self._wait(self._event_waiters)

    # -- admission ----------------------------------------------------------------

    def _admit(self, job: Job) -> None:
        """Turn a pending job into schedulable tasks (cache/journal
        consulted first), or straight into a result if nothing is left
        to run."""
        self._admit_seq += 1
        run = _JobRun(job=job, points=job.request.points(),
                      journal=self.store.journal_for(job.id),
                      seq=self._admit_seq)
        replayed_map = run.journal.replay()
        replayed = 0
        cache_hits = 0
        for index, point in enumerate(run.points):
            hit = self.cache.get(point) if self.cache is not None else None
            if hit is not None:
                run.point_outcomes[index] = hit
                cache_hits += 1
                self.stats.cache_hits += 1
                continue
            key = run.journal.key_for(point)
            for repeat in range(point.repeats):
                record = replayed_map.get((key, repeat))
                if record is not None:
                    run.records[(index, repeat)] = record
                    replayed += 1
                else:
                    run.pending.append((index, repeat))
        self.stats.journal_replayed += replayed
        job.total = job.request.total_tasks
        job.done = job.total - len(run.pending)
        job.failed = 0
        if job.state == "pending":
            job.transition("running")
        self._runs[job.id] = run
        self._emit(job, "job_started", tasks=len(run.pending),
                   replayed=replayed, cache_hits=cache_hits)
        self.store.save_job(job)
        if run.settled:
            self._finalize(run)
        else:
            self._notify(self._work_waiters)

    # -- scheduling ----------------------------------------------------------------

    def _next_task(self):
        """The fair-scheduler pick: lowest (priority, served, seq)."""
        best = None
        for run in self._runs.values():
            if not run.pending:
                continue
            rank = (run.job.request.priority, run.served, run.seq)
            if best is None or rank < best[0]:
                best = (rank, run)
        if best is None:
            return None
        run = best[1]
        task = run.pending.popleft()
        run.inflight.add(task)
        run.served += 1
        return run, task

    async def _worker(self) -> None:
        while self._running:
            picked = self._next_task()
            if picked is None:
                await self._wait(self._work_waiters)
                continue
            run, task = picked
            try:
                await self._run_task(run, task)
            except Exception as exc:  # infrastructure, not task, failure
                run.inflight.discard(task)
                self._fail_job(run, exc)

    async def _run_task(self, run: _JobRun, task) -> None:
        index, repeat = task
        point = run.points[index]
        job = run.job
        attempts = 0
        started = time.monotonic()
        while True:
            attempts += 1
            self.stats.tasks_executed += 1
            try:
                record = await self._loop.run_in_executor(
                    self._executor, execute_repeat, point, repeat)
                break
            except BrokenProcessPool as exc:
                # A killed pool worker poisons the whole executor;
                # rebuild it (completed tasks are unaffected) and let
                # the normal retry budget decide this task's fate.
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = self._build_executor()
                record = self._maybe_fail(task, exc, attempts)
            except Exception as exc:
                record = self._maybe_fail(task, exc, attempts)
            if record is not None:
                break
            await asyncio.sleep(self.policy.delay_before(
                attempts + 1, task_seed=point.seed_for(repeat)))
        run.inflight.discard(task)
        if job.state == "cancelled":
            return  # the result is pure and discarded; nothing to undo
        run.records[task] = record
        if isinstance(record, TaskFailure):
            job.failed += 1
            self.stats.tasks_failed += 1
        else:
            run.journal.record(point, repeat, record)
        job.done += 1
        self._emit(job, "job_progress", done=job.done, total=job.total,
                   point=index, repeat=repeat, failed=job.failed,
                   wall_s=round(time.monotonic() - started, 6))
        self.store.save_job(job)
        if run.settled:
            self._finalize(run)

    def _maybe_fail(self, task, exc: Exception,
                    attempts: int) -> Optional[TaskFailure]:
        """A failed attempt: ``None`` while retries remain, else the
        structured failure record (graceful degradation)."""
        if attempts < self.policy.max_attempts:
            return None
        index, repeat = task
        return TaskFailure.from_exception(
            f"point-{index}-repeat-{repeat}", exc, attempts)

    # -- completion ----------------------------------------------------------------

    def _finalize(self, run: _JobRun) -> None:
        """Fold records into outcomes (repeat order — bit-identical to
        a serial sweep), persist, and settle the job."""
        job = run.job
        outcomes = []
        for index, point in enumerate(run.points):
            if index in run.point_outcomes:
                outcomes.append(run.point_outcomes[index])
                continue
            rows = []
            for repeat in range(point.repeats):
                entry = run.records[(index, repeat)]
                if isinstance(entry, TaskFailure):
                    entry = TaskFailure(task=f"repeat-{repeat}",
                                        error_type=entry.error_type,
                                        message=entry.message,
                                        attempts=entry.attempts)
                rows.append(entry)
            outcome = aggregate_outcome(point, rows)
            if self.cache is not None and outcome.failed_runs == 0:
                self.cache.put(point, outcome)
            outcomes.append(outcome)
        self._results[job.id] = outcomes
        self.store.save_result(job.id, outcomes)
        job.correct = all(outcome.failed_runs == 0
                          and outcome.success_rate == 1.0
                          for outcome in outcomes)
        job.transition("done")
        self.stats.jobs_done += 1
        self._runs.pop(job.id, None)
        self._emit(job, "job_done", correct=job.correct,
                   wall_s=round(time.time() - job.submitted_at, 6))
        self.store.save_job(job)

    def _fail_job(self, run: _JobRun, exc: Exception) -> None:
        """Infrastructure failure (store/journal I/O, a queue bug):
        the whole job degrades to ``failed`` with its cause recorded."""
        job = run.job
        if job.terminal:
            return
        job.error = f"{type(exc).__name__}: {exc}"
        job.transition("failed")
        self.stats.jobs_failed += 1
        self._runs.pop(job.id, None)
        self._emit(job, "job_failed", error=type(exc).__name__)
        try:
            self.store.save_job(job)
        except OSError:
            pass  # the disk is the thing that failed

    # -- events ---------------------------------------------------------------------

    def _emit(self, job: Job, kind: str, **fields) -> None:
        """One job event: SSE buffer + events.jsonl + global telemetry."""
        entry = {"event": kind, "job": job.id,
                 "t": round(time.monotonic() - self._epoch, 6), **fields}
        self._events.setdefault(job.id, []).append(entry)
        try:
            self.store.append_event(job.id, dict(entry))
        except OSError:
            pass  # the durable envelope is best-effort; SSE still works
        obs_event(kind, **{key: value for key, value in entry.items()
                           if key != "event"})
        self._notify(self._event_waiters)

    # -- waiter plumbing (sync-notifiable, loop-thread only) -------------------------

    def _notify(self, waiters: list) -> None:
        pending, waiters[:] = waiters[:], []
        for future in pending:
            if not future.done():
                future.set_result(None)

    async def _wait(self, waiters: list) -> None:
        future = self._loop.create_future()
        waiters.append(future)
        try:
            await future
        except asyncio.CancelledError:
            if future in waiters:
                waiters.remove(future)
            raise
