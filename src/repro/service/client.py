"""A small blocking client for the service API (stdlib only).

Backs the ``repro submit/status/result/cancel`` CLI subcommands and
``benchmarks/bench_service.py``; importable by anyone who wants to
drive a server from Python without hand-rolling ``urllib`` calls::

    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8321")
    job = client.submit({"protocol": "dpb", "n": 4, "ell": 64})
    done = client.wait(job["id"])
    outcomes = client.result(job["id"])["outcomes"]

The client is deliberately synchronous — callers that want concurrency
run many clients in threads (exactly what the load bench does), which
also exercises the server the way real independent peers would.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional

from repro.service.jobs import PRIORITY_DEFAULT, TERMINAL

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An API-level failure (non-2xx), with the server's explanation."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One server, many calls.  ``base_url`` like ``http://host:port``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=body,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(exc.code, detail) from exc

    # -- the API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/api/stats")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/api/jobs")["jobs"]

    def submit(self, spec: dict, *, axis: Optional[str] = None,
               values=(), priority: int = PRIORITY_DEFAULT,
               client: str = "anonymous") -> dict:
        """Submit one job; returns the job dict (``created`` says
        whether this submission coalesced into an existing one)."""
        payload = {"spec": spec, "axis": axis, "values": list(values),
                   "priority": priority, "client": client}
        response = self._request("POST", "/api/jobs", payload)
        job = response["job"]
        job["created"] = response["created"]
        return job

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")["job"]

    def result(self, job_id: str) -> dict:
        """The finished job's payload (raises 409 ServiceError until
        the job is done)."""
        return self._request("GET", f"/api/jobs/{job_id}/result")

    # -- streaming ------------------------------------------------------------------

    def stream(self, job_id: str, *, after: int = 0,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Iterate the job's SSE events until the stream closes.

        Yields decoded event dicts; the stream ends when the job
        reaches a terminal state (the server closes the connection).
        """
        request = urllib.request.Request(
            f"{self.base_url}/api/jobs/{job_id}/events?after={after}",
            headers={"Accept": "text/event-stream"})
        with urllib.request.urlopen(
                request, timeout=timeout or self.timeout) as response:
            data_lines: list[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
                elif not line and data_lines:
                    yield json.loads("\n".join(data_lines))
                    data_lines = []

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.1) -> dict:
        """Block until the job is terminal; returns its final record.

        Prefers the SSE stream (no polling load); falls back to status
        polling if the stream drops early.
        """
        deadline = time.monotonic() + timeout
        try:
            for _entry in self.stream(job_id, timeout=timeout):
                pass  # draining the stream IS the wait
        except (OSError, ValueError):
            pass  # stream interrupted: fall through to polling
        while True:
            job = self.status(job_id)
            if job["state"] in TERMINAL:
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']!r} "
                    f"after {timeout}s")
            time.sleep(poll)
