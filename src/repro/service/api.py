"""The HTTP API surface, independent of any HTTP framework.

:class:`ServiceAPI` maps ``(method, path, query, body)`` to plain
:class:`Response` values (or an :class:`EventStream` marker for SSE),
so the same routing and JSON shapes back every transport: the
stdlib asyncio server in :mod:`repro.service.server` (always
available), and the optional FastAPI app in :func:`fastapi_app`
(mirroring the numpy ``[scale]`` extra pattern: ``pip install
repro[serve]`` adds it, its absence costs nothing).

Endpoints (the full operator reference lives in docs/SERVICE.md):

====== =============================== =====================================
method path                            meaning
====== =============================== =====================================
GET    ``/``                           the live dashboard page
GET    ``/healthz``                    liveness + job count
GET    ``/api/stats``                  queue/pool/dedup/cache counters
POST   ``/api/jobs``                   submit (201 created / 200 coalesced)
GET    ``/api/jobs``                   list all jobs
GET    ``/api/jobs/<id>``              one job's status
POST   ``/api/jobs/<id>/cancel``       cancel (idempotent)
DELETE ``/api/jobs/<id>``              alias for cancel
GET    ``/api/jobs/<id>/result``       outcomes (409 until done)
GET    ``/api/jobs/<id>/events``       SSE stream (``?after=N`` replays)
GET    ``/api/jobs/<id>/flame``        folded flamegraph stacks (text)
GET    ``/api/timeline``               all-jobs text timeline
====== =============================== =====================================

Submission body: ``{"spec": {...ExperimentSpec fields...}, "axis":
null|str, "values": [...], "priority": int, "client": str}`` — the
spec dict takes exactly the dataclass fields, same as the persistence
layer's JSON round-trip.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.experiments import ExperimentSpec
from repro.persistence import outcome_to_dict
from repro.service.dashboard import (dashboard_page, job_flame_text,
                                     render_job_timeline)
from repro.service.jobs import PRIORITY_DEFAULT, Job, JobRequest, job_to_dict
from repro.service.queue import JobQueue

__all__ = ["EventStream", "Response", "ServiceAPI", "fastapi_app"]


@dataclass
class Response:
    """One finished HTTP response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str = "application/json"

    @classmethod
    def json(cls, payload: dict, status: int = 200) -> "Response":
        return cls(status=status,
                   body=(json.dumps(payload, sort_keys=True) + "\n")
                   .encode("utf-8"))

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message}, status=status)

    @classmethod
    def text(cls, body: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8") -> "Response":
        return cls(status=status, body=body.encode("utf-8"),
                   content_type=content_type)


@dataclass
class EventStream:
    """Marker: the transport should stream this job's events as SSE."""

    job_id: str
    after: int = 0


class ServiceAPI:
    """Routes requests onto one :class:`~repro.service.queue.JobQueue`."""

    def __init__(self, queue: JobQueue) -> None:
        self.queue = queue

    # -- dispatch ---------------------------------------------------------------

    def handle(self, method: str, path: str, query: dict,
               body: bytes) -> Union[Response, EventStream]:
        """Route one request; never raises for client errors."""
        method = method.upper()
        parts = [part for part in path.split("/") if part]
        try:
            if parts == [] and method == "GET":
                return Response.text(dashboard_page(),
                                     content_type="text/html; charset=utf-8")
            if parts == ["healthz"] and method == "GET":
                return self._healthz()
            if parts[:1] == ["api"]:
                return self._api(method, parts[1:], query, body)
        except ValueError as exc:
            return Response.error(400, str(exc))
        return Response.error(404, f"no route for {method} {path}")

    def _api(self, method: str, parts: list, query: dict,
             body: bytes) -> Union[Response, EventStream]:
        if parts == ["stats"] and method == "GET":
            return self._stats()
        if parts == ["timeline"] and method == "GET":
            return self._timeline()
        if parts == ["jobs"]:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return Response.json(
                    {"jobs": [job_to_dict(job)
                              for job in self.queue.jobs()]})
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            job = self.queue.job(job_id)
            if job is None:
                return Response.error(404, f"unknown job {job_id!r}")
            tail = parts[2:]
            if tail == [] and method == "GET":
                return Response.json({"job": job_to_dict(job)})
            if (tail == ["cancel"] and method == "POST") or \
                    (tail == [] and method == "DELETE"):
                cancelled = self.queue.cancel(job_id)
                return Response.json({"job": job_to_dict(cancelled)})
            if tail == ["result"] and method == "GET":
                return self._result(job)
            if tail == ["events"] and method == "GET":
                after = int(query.get("after", ["0"])[0])
                return EventStream(job_id=job_id, after=after)
            if tail == ["flame"] and method == "GET":
                return Response.text(
                    job_flame_text(self.queue.events(job_id)))
        return Response.error(
            404, f"no route for {method} /api/{'/'.join(parts)}")

    # -- handlers ---------------------------------------------------------------

    def _healthz(self) -> Response:
        return Response.json({
            "ok": True,
            "jobs": len(self.queue.jobs()),
            "uptime_s": round(time.time() - self.queue.started_at, 3),
        })

    def _stats(self) -> Response:
        return Response.json({
            "pool": self.queue.pool,
            "pool_mode": self.queue.pool_mode,
            "jobs": len(self.queue.jobs()),
            "cache": self.queue.cache is not None,
            "stats": self.queue.stats.as_dict(),
        })

    def _timeline(self) -> Response:
        events = [entry for job in self.queue.jobs()
                  for entry in self.queue.events(job.id)]
        events.sort(key=lambda entry: entry.get("t", 0.0))
        return Response.text(render_job_timeline(events))

    def _submit(self, body: bytes) -> Response:
        request = parse_job_request(body)
        job, created = self.queue.submit(request)
        return Response.json({"job": job_to_dict(job),
                              "created": created},
                             status=201 if created else 200)

    def _result(self, job: Job) -> Response:
        if job.state != "done":
            return Response.json({"error": "job is not done",
                                  "state": job.state}, status=409)
        outcomes = self.queue.result(job.id)
        if outcomes is None:
            return Response.error(500, "result file missing or corrupt")
        return Response.json({
            "job": job.id,
            "correct": job.correct,
            "outcomes": [outcome_to_dict(outcome)
                         for outcome in outcomes],
        })


def parse_job_request(body: bytes) -> JobRequest:
    """Decode and validate a submission body (raises ``ValueError``)."""
    try:
        payload = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"body is not JSON: {exc}")
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("spec"), dict):
        raise ValueError('body must be {"spec": {...}, ...}')
    known = {field.name for field in dataclasses.fields(ExperimentSpec)}
    unknown = set(payload["spec"]) - known
    if unknown:
        raise ValueError(f"unknown spec fields {sorted(unknown)}")
    try:
        spec = ExperimentSpec(**payload["spec"])
    except (TypeError, ValueError, KeyError) as exc:
        raise ValueError(f"bad spec: {exc}")
    return JobRequest(
        spec=spec,
        axis=payload.get("axis"),
        values=tuple(payload.get("values") or ()),
        priority=int(payload.get("priority", PRIORITY_DEFAULT)),
        client=str(payload.get("client", "anonymous")))


def format_sse(seq: int, entry: dict) -> bytes:
    """One telemetry event in Server-Sent Events wire form.

    ``id:`` carries the per-job sequence number so a reconnecting
    client resumes with ``?after=<Last-Event-ID + 1>``; the event kind
    rides inside ``data:`` (not ``event:``) so ``EventSource``'s
    default ``onmessage`` sees every kind.
    """
    data = json.dumps(entry, sort_keys=True)
    return f"id: {seq}\ndata: {data}\n\n".encode("utf-8")


def fastapi_app(queue: JobQueue):  # pragma: no cover - optional extra
    """The same API as a FastAPI app (requires the ``serve`` extra).

    The stdlib server is the canonical, always-available path; this
    exists for operators who want to mount the service inside an
    existing ASGI deployment.  Raises ``RuntimeError`` when FastAPI is
    not installed (``pip install repro[serve]``).
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import Response as FastAPIResponse
        from fastapi.responses import StreamingResponse
    except ImportError as exc:
        raise RuntimeError(
            "FastAPI is not installed; install the serve extra "
            "(pip install repro[serve]) or use the stdlib server "
            "(repro serve)") from exc

    api = ServiceAPI(queue)
    app = FastAPI(title="repro serve")

    @app.api_route("/{path:path}",
                   methods=["GET", "POST", "DELETE"])
    async def dispatch(path: str, request: Request):
        query: dict[str, list[str]] = {}
        for key, value in request.query_params.multi_items():
            query.setdefault(key, []).append(value)
        result = api.handle(request.method, "/" + path, query,
                            await request.body())
        if isinstance(result, EventStream):
            async def stream():
                async for seq, entry in queue.stream(result.job_id,
                                                     result.after):
                    yield format_sse(seq, entry)
            return StreamingResponse(stream(),
                                     media_type="text/event-stream")
        return FastAPIResponse(content=result.body,
                               status_code=result.status,
                               media_type=result.content_type)

    return app
