"""The on-disk job store: one directory per job, plain JSON inside.

Layout under the service data directory (``--data-dir``)::

    <root>/
      cache/                    the engine ResultCache (point outcomes)
      jobs/<job-id>/
        job.json                the Job record (atomic rewrite per change)
        events.jsonl            the job's telemetry envelope (schema v1)
        journal.jsonl           per-repeat SweepJournal checkpoints
        result.json             outcomes (save_outcomes format), when done

Design rules, inherited from the cache/journal layers:

- **Writes are atomic** (temp file + ``os.replace``) for ``job.json``
  and ``result.json``; ``events.jsonl`` and ``journal.jsonl`` are
  append-only (a torn tail line is skipped by their readers).
- **Corruption is skipped, never fatal**: a job directory that fails to
  parse is ignored at load time (and reported via :attr:`corrupt`), so
  one damaged record cannot brick the server.
- **Everything is schema-checked JSON** — the events file is a valid
  telemetry export (``repro trace diff`` can compare two job runs),
  the result file loads with :func:`repro.persistence.load_outcomes`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.execution.journal import SweepJournal
from repro.obs.schema import validate_event
from repro.persistence import load_outcomes, save_outcomes
from repro.service.jobs import Job, job_from_dict, job_to_dict

__all__ = ["JobStore"]

#: On-disk job record format tag; bump on incompatible changes.
STORE_SCHEMA = 1


class JobStore:
    """All persistent state of one service instance, under ``root``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.jobs_dir = self.root / "jobs"
        self.cache_dir = self.root / "cache"
        #: Job directories skipped by the last :meth:`load_all`.
        self.corrupt = 0

    # -- paths ---------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def job_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "events.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def journal_for(self, job_id: str) -> SweepJournal:
        """The job's private checkpoint journal (resume source)."""
        return SweepJournal(self.job_dir(job_id) / "journal.jsonl")

    # -- job records -----------------------------------------------------------

    def save_job(self, job: Job) -> None:
        """Atomically (re)write one job record."""
        path = self.job_path(job.id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": STORE_SCHEMA, "job": job_to_dict(job)}
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        temp.write_text(json.dumps(payload, indent=2, sort_keys=True),
                        encoding="utf-8")
        os.replace(temp, path)

    def load_job(self, job_id: str) -> Optional[Job]:
        """One job record, or ``None`` on any miss/corruption."""
        try:
            payload = json.loads(
                self.job_path(job_id).read_text(encoding="utf-8"))
            if payload.get("schema") != STORE_SCHEMA:
                return None
            return job_from_dict(payload["job"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def load_all(self) -> list[Job]:
        """Every parseable job record, oldest submission first."""
        jobs: list[Job] = []
        self.corrupt = 0
        if not self.jobs_dir.is_dir():
            return jobs
        for entry in sorted(self.jobs_dir.iterdir()):
            if not entry.is_dir():
                continue
            job = self.load_job(entry.name)
            if job is None:
                self.corrupt += 1
            else:
                jobs.append(job)
        jobs.sort(key=lambda job: job.submitted_at)
        return jobs

    # -- events ------------------------------------------------------------------

    def append_event(self, job_id: str, entry: dict) -> None:
        """Append one schema-validated event to the job's envelope."""
        validate_event(entry)
        path = self.events_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def load_events(self, job_id: str) -> list[dict]:
        """The job's recorded events (torn tail lines skipped)."""
        events: list[dict] = []
        try:
            text = self.events_path(job_id).read_text(encoding="utf-8")
        except OSError:
            return events
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail line: the writer died mid-append
            if isinstance(entry, dict) and "event" in entry:
                events.append(entry)
        return events

    # -- results -----------------------------------------------------------------

    def save_result(self, job_id: str, outcomes: Iterable) -> None:
        """Persist a finished job's outcomes (atomic, standard format)."""
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        save_outcomes(outcomes, temp)
        os.replace(temp, path)

    def load_result(self, job_id: str) -> Optional[list]:
        """A finished job's outcomes, or ``None`` if absent/corrupt."""
        try:
            return load_outcomes(self.result_path(job_id))
        except (OSError, ValueError, KeyError, TypeError):
            return None
