"""A compact bit-vector used for the source array ``X`` and peer outputs.

The DR model is defined over an ``ell``-bit input array.  The simulator
handles arrays up to a few hundred thousand bits in tests and benches,
so bits are packed into a ``bytearray`` (8 bits per byte, LSB-first
within each byte: bit ``i`` lives at ``_bytes[i >> 3]`` position
``i & 7``).  The public surface mirrors the small subset of the
``list`` protocol the protocols actually need, plus segment extraction
used by the randomized download protocols.

Bulk operations (:meth:`BitArray.from_bits`, :meth:`BitArray.get_many`,
:meth:`BitArray.set_many`, :meth:`BitArray.segment`,
:meth:`BitArray.set_segment`, :meth:`BitArray.count_ones`) go through
``int``/``bytes`` conversions instead of per-bit Python loops: the
LSB-first packing means the whole array *is* the little-endian integer
``int.from_bytes(_bytes, "little")``, so segment extraction is a shift
and a mask, and population count is one ``int.bit_count`` call.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.util.validation import check_index, check_nonnegative, check_range


def canonical_indices(indices: Iterable[int],
                      length: int) -> tuple[list[int], int]:
    """Collapse a query to ``(sorted unique indices, bitmask)``.

    Bounds are validated in bulk off the sorted extremes; contiguous
    step-1 ``range`` inputs (the segment-query path) skip the sort and
    dedup entirely and build their mask with one shift.
    """
    if isinstance(indices, range) and indices.step == 1:
        unique = list(indices)
    else:
        unique = sorted(set(indices))
    if not unique:
        return unique, 0
    if unique[0] < 0 or unique[-1] >= length:
        offender = unique[0] if unique[0] < 0 else unique[-1]
        check_index("query index", offender, length)
    if unique[-1] - unique[0] + 1 == len(unique):
        mask = ((1 << len(unique)) - 1) << unique[0]
    else:
        mask = 0
        for index in unique:
            mask |= 1 << index
    return unique, mask


#: byte value -> positions of its set bits, for mask expansion.
_BYTE_BITS: list[tuple[int, ...]] = [
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)]


def mask_to_set(mask: int) -> set[int]:
    """Expand a set-of-positions bitmask back into an index set.

    Walks the mask byte-wise through a 256-entry position table, so a
    dense ``n``-bit mask expands in O(n) small-int operations instead
    of O(n) big-int shifts.
    """
    result: set[int] = set()
    if not mask:
        return result
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    table = _BYTE_BITS
    add = result.add
    base = 0
    for byte in data:
        if byte:
            for bit in table[byte]:
                add(base + bit)
        base += 8
    return result


class BitArray:
    """A fixed-length, mutable array of bits.

    >>> x = BitArray.from_bits([1, 0, 1, 1])
    >>> x[0], x[1]
    (1, 0)
    >>> x.segment(1, 4)
    '011'
    """

    __slots__ = ("_length", "_bytes")

    def __init__(self, length: int) -> None:
        self._length = check_nonnegative("length", length)
        self._bytes = bytearray((length + 7) // 8)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitArray":
        """Build a :class:`BitArray` from an iterable of 0/1 values."""
        bits = list(bits)
        array = cls(len(bits))
        if bits:
            for bit in bits:
                if bit not in (0, 1):
                    raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            # Index order == LSB order, so the reversed bit string is the
            # binary literal of the backing integer.
            value = int("".join("1" if bit else "0" for bit in bits)[::-1], 2)
            array._bytes[:] = value.to_bytes(len(array._bytes), "little")
        return array

    @classmethod
    def zeros(cls, length: int) -> "BitArray":
        """Return an all-zero array of ``length`` bits."""
        return cls(length)

    @classmethod
    def ones(cls, length: int) -> "BitArray":
        """Return an all-one array of ``length`` bits."""
        array = cls(length)
        array._bytes = bytearray(b"\xff" * len(array._bytes))
        # Mask the padding bits of the final byte so equality stays exact:
        # only positions 0..(length % 8 - 1) are real when length is not a
        # multiple of 8.
        if length & 7:
            array._bytes[-1] = (1 << (length & 7)) - 1
        return array

    @classmethod
    def random(cls, length: int, rng) -> "BitArray":
        """Return a uniformly random array drawn from ``rng``."""
        return cls.from_bits(rng.random_bits(length))

    @classmethod
    def from_string(cls, bits: str) -> "BitArray":
        """Build from a string of ``'0'``/``'1'`` characters."""
        if bits.count("0") + bits.count("1") != len(bits):
            raise ValueError(f"bit string may only contain 0/1, got {bits!r}")
        array = cls(len(bits))
        if bits:
            value = int(bits[::-1], 2)
            array._bytes[:] = value.to_bytes(len(array._bytes), "little")
        return array

    @classmethod
    def from_segments(cls, segments: Iterable[str]) -> "BitArray":
        """Build from consecutive segment strings, concatenated in order.

        Batched companion to :meth:`set_segment`: assembling an output
        from ``k`` accepted block strings costs one join and one
        int conversion instead of ``k`` shift-and-mask writes.
        Equivalent to ``from_string("".join(segments))``; the scale
        path packs whole-peer outputs this way.
        """
        return cls.from_string("".join(segments))

    # -- element access ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        check_index("index", index, self._length)
        return (self._bytes[index >> 3] >> (index & 7)) & 1

    def __setitem__(self, index: int, bit: int) -> None:
        check_index("index", index, self._length)
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if bit:
            self._bytes[index >> 3] |= 1 << (index & 7)
        else:
            self._clear(index)

    def _clear(self, index: int) -> None:
        self._bytes[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def __iter__(self) -> Iterator[int]:
        data = self._bytes
        for index in range(self._length):
            yield (data[index >> 3] >> (index & 7)) & 1

    # -- bulk element access -------------------------------------------------

    def get_many(self, indices: Iterable[int]) -> list[int]:
        """Read many positions at once; returns bits in argument order.

        Equivalent to ``[array[i] for i in indices]`` but validates the
        bounds once (via min/max) and reads through local references, so
        batched source reads don't pay a Python call per bit.
        """
        indices = list(indices)
        if not indices:
            return []
        lowest, highest = min(indices), max(indices)
        if lowest < 0 or highest >= self._length:
            # Delegate to the scalar checker for the canonical error.
            check_index("index", lowest if lowest < 0 else highest,
                        self._length)
        data = self._bytes
        return [(data[index >> 3] >> (index & 7)) & 1 for index in indices]

    def set_many(self, values: Union[Mapping[int, int],
                                     Iterable[tuple[int, int]]]) -> None:
        """Write many ``index -> bit`` assignments at once.

        Accepts a mapping or an iterable of ``(index, bit)`` pairs; each
        assignment behaves exactly like ``array[index] = bit``.
        """
        items = values.items() if isinstance(values, Mapping) else values
        length = self._length
        data = self._bytes
        for index, bit in items:
            if not 0 <= index < length:
                check_index("index", index, length)
            if bit not in (0, 1):
                raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            if bit:
                data[index >> 3] |= 1 << (index & 7)
            else:
                data[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    # -- segments ------------------------------------------------------------

    def segment(self, lo: int, hi: int) -> str:
        """Return the bits of ``[lo, hi)`` as a '0'/'1' string.

        Strings are the wire format the randomized protocols exchange
        for segments, so this is the canonical encoding.
        """
        lo, hi = check_range("segment", lo, hi, self._length)
        width = hi - lo
        if width == 0:
            return ""
        # Slice the covering bytes, shift off the leading offset, mask to
        # width; the binary rendering is MSB-first so reverse back to
        # index order.
        value = int.from_bytes(self._bytes[lo >> 3:(hi + 7) >> 3], "little")
        value = (value >> (lo & 7)) & ((1 << width) - 1)
        return format(value, f"0{width}b")[::-1]

    def set_segment(self, lo: int, bits: str) -> None:
        """Write a '0'/'1' string starting at index ``lo``."""
        check_range("segment", lo, lo + len(bits), self._length)
        if bits.count("0") + bits.count("1") != len(bits):
            raise ValueError(f"bit string may only contain 0/1: {bits!r}")
        width = len(bits)
        if width == 0:
            return
        start, stop = lo >> 3, (lo + width + 7) >> 3
        shift = lo & 7
        chunk = int.from_bytes(self._bytes[start:stop], "little")
        mask = ((1 << width) - 1) << shift
        chunk = (chunk & ~mask) | (int(bits[::-1], 2) << shift)
        self._bytes[start:stop] = chunk.to_bytes(stop - start, "little")

    def to_bits(self) -> list[int]:
        """Return the contents as a plain list of 0/1 ints."""
        segment = self.segment(0, self._length)
        return [1 if ch == "1" else 0 for ch in segment]

    def count_ones(self) -> int:
        """Return the number of set bits."""
        return int.from_bytes(self._bytes, "little").bit_count()

    # -- comparison / repr -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitArray):
            return self._length == other._length and self._bytes == other._bytes
        if isinstance(other, Sequence):
            return len(other) == self._length and all(
                self[index] == other[index] for index in range(self._length))
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._length, bytes(self._bytes)))

    def copy(self) -> "BitArray":
        """Return an independent copy."""
        duplicate = BitArray(self._length)
        duplicate._bytes = bytearray(self._bytes)
        return duplicate

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitArray('{self.segment(0, self._length)}')"
        head = self.segment(0, 32)
        return f"BitArray('{head}...', length={self._length})"
