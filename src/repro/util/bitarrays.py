"""A compact bit-vector used for the source array ``X`` and peer outputs.

The DR model is defined over an ``ell``-bit input array.  The simulator
handles arrays up to a few hundred thousand bits in tests and benches,
so bits are packed into a ``bytearray`` (8 bits per byte) rather than
stored as a Python list of ints.  The public surface mirrors the small
subset of the ``list`` protocol the protocols actually need, plus
segment extraction used by the randomized download protocols.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.util.validation import check_index, check_nonnegative, check_range


class BitArray:
    """A fixed-length, mutable array of bits.

    >>> x = BitArray.from_bits([1, 0, 1, 1])
    >>> x[0], x[1]
    (1, 0)
    >>> x.segment(1, 4)
    '011'
    """

    __slots__ = ("_length", "_bytes")

    def __init__(self, length: int) -> None:
        self._length = check_nonnegative("length", length)
        self._bytes = bytearray((length + 7) // 8)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitArray":
        """Build a :class:`BitArray` from an iterable of 0/1 values."""
        bits = list(bits)
        array = cls(len(bits))
        for index, bit in enumerate(bits):
            array[index] = bit
        return array

    @classmethod
    def zeros(cls, length: int) -> "BitArray":
        """Return an all-zero array of ``length`` bits."""
        return cls(length)

    @classmethod
    def ones(cls, length: int) -> "BitArray":
        """Return an all-one array of ``length`` bits."""
        array = cls(length)
        array._bytes = bytearray(b"\xff" * len(array._bytes))
        # Clear the padding bits in the last byte so equality stays exact.
        for index in range(length, 8 * len(array._bytes)):
            array._clear(index)
        return array

    @classmethod
    def random(cls, length: int, rng) -> "BitArray":
        """Return a uniformly random array drawn from ``rng``."""
        return cls.from_bits(rng.random_bits(length))

    @classmethod
    def from_string(cls, bits: str) -> "BitArray":
        """Build from a string of ``'0'``/``'1'`` characters."""
        if any(ch not in "01" for ch in bits):
            raise ValueError(f"bit string may only contain 0/1, got {bits!r}")
        return cls.from_bits(int(ch) for ch in bits)

    # -- element access ------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        check_index("index", index, self._length)
        return (self._bytes[index >> 3] >> (index & 7)) & 1

    def __setitem__(self, index: int, bit: int) -> None:
        check_index("index", index, self._length)
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if bit:
            self._bytes[index >> 3] |= 1 << (index & 7)
        else:
            self._clear(index)

    def _clear(self, index: int) -> None:
        self._bytes[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def __iter__(self) -> Iterator[int]:
        for index in range(self._length):
            yield self[index]

    # -- segments ------------------------------------------------------------

    def segment(self, lo: int, hi: int) -> str:
        """Return the bits of ``[lo, hi)`` as a '0'/'1' string.

        Strings are the wire format the randomized protocols exchange
        for segments, so this is the canonical encoding.
        """
        lo, hi = check_range("segment", lo, hi, self._length)
        return "".join("1" if self[index] else "0" for index in range(lo, hi))

    def set_segment(self, lo: int, bits: str) -> None:
        """Write a '0'/'1' string starting at index ``lo``."""
        check_range("segment", lo, lo + len(bits), self._length)
        for offset, ch in enumerate(bits):
            if ch not in "01":
                raise ValueError(f"bit string may only contain 0/1: {bits!r}")
            self[lo + offset] = int(ch)

    def to_bits(self) -> list[int]:
        """Return the contents as a plain list of 0/1 ints."""
        return list(self)

    def count_ones(self) -> int:
        """Return the number of set bits."""
        return sum(byte.bit_count() for byte in self._bytes)

    # -- comparison / repr -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitArray):
            return self._length == other._length and self._bytes == other._bytes
        if isinstance(other, Sequence):
            return len(other) == self._length and all(
                self[index] == other[index] for index in range(self._length))
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._length, bytes(self._bytes)))

    def copy(self) -> "BitArray":
        """Return an independent copy."""
        duplicate = BitArray(self._length)
        duplicate._bytes = bytearray(self._bytes)
        return duplicate

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitArray('{self.segment(0, self._length)}')"
        head = self.segment(0, 32)
        return f"BitArray('{head}...', length={self._length})"
