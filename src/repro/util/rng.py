"""Seeded, stream-splittable randomness.

Deterministic replay is the backbone of the test suite: a simulation
run is a pure function of ``(configuration, seed)``.  To keep the
protocol coin flips, the adversary's choices, and any workload
generation statistically independent *and* individually reproducible,
every consumer derives its own child stream from a parent seed with a
stable label, instead of sharing one global ``random.Random``.

The derivation uses SHA-256 over ``(seed, label)``, so child streams do
not collide and do not depend on the order in which they are created.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``seed`` and a stable ``label``."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


class SplittableRNG:
    """A ``random.Random`` wrapper that can mint independent children.

    >>> root = SplittableRNG(7)
    >>> a = root.split("adversary")
    >>> b = root.split("peer-3")
    >>> a.randint(0, 9) == SplittableRNG(7).split("adversary").randint(0, 9)
    True
    """

    def __init__(self, seed: int) -> None:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed & _MASK_64
        self._random = random.Random(self.seed)

    def split(self, label: str) -> "SplittableRNG":
        """Return a child RNG that only depends on ``(seed, label)``."""
        return SplittableRNG(derive_seed(self.seed, label))

    # -- thin pass-throughs to random.Random -------------------------------

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return self._random.random()

    def randint(self, a: int, b: int) -> int:
        """Return a uniform integer in ``[a, b]``."""
        return self._random.randint(a, b)

    def randrange(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)``."""
        return self._random.randrange(n)

    def uniform(self, a: float, b: float) -> float:
        """Return a uniform float in ``[a, b]``."""
        return self._random.uniform(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniform element of ``seq``."""
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Return ``k`` distinct elements sampled without replacement."""
        return self._random.sample(population, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def random_bits(self, count: int) -> list[int]:
        """Return ``count`` independent fair coin flips as 0/1 ints."""
        getrandbits = self._random.getrandbits
        return [getrandbits(1) for _ in range(count)]

    def geometric_delays(self, mean: float) -> Iterator[float]:
        """Yield an endless stream of exponential delays with ``mean``."""
        while True:
            yield self._random.expovariate(1.0 / mean)

    def __repr__(self) -> str:
        return f"SplittableRNG(seed={self.seed})"
