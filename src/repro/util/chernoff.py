"""Chernoff/Hoeffding helpers for quantitative "w.h.p." checks.

The paper's randomized claims (Claim 5, Lemma 3.8) are of the form
"every segment is picked by at least tau honest peers with probability
``1 - n^{-c}``".  The test suite does not merely eyeball success rates:
it computes the bound the paper's argument yields and asserts the
*measured* failure frequency over repeated seeded runs stays within it
(plus sampling slack).  These helpers centralize that arithmetic.
"""

from __future__ import annotations

import math


def chernoff_lower_tail(mean: float, delta: float) -> float:
    """Probability bound ``P[X <= (1 - delta) * mean]`` for sums of
    independent 0/1 variables with expectation ``mean``.

    Uses the standard multiplicative form ``exp(-delta^2 * mean / 2)``.
    """
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    return math.exp(-delta * delta * mean / 2.0)


def chernoff_upper_tail(mean: float, delta: float) -> float:
    """Probability bound ``P[X >= (1 + delta) * mean]``.

    Uses ``exp(-delta^2 * mean / (2 + delta))``, valid for all
    ``delta >= 0``.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    return math.exp(-delta * delta * mean / (2.0 + delta))


def hoeffding_two_sided(samples: int, deviation: float) -> float:
    """Hoeffding bound ``P[|mean_hat - mean| >= deviation]`` for
    ``samples`` i.i.d. variables in ``[0, 1]``."""
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if deviation < 0:
        raise ValueError(f"deviation must be non-negative, got {deviation}")
    return 2.0 * math.exp(-2.0 * samples * deviation * deviation)


def union_bound(per_event: float, events: int) -> float:
    """Union bound over ``events`` events, clipped to ``1.0``."""
    if events < 0:
        raise ValueError(f"events must be non-negative, got {events}")
    return min(1.0, per_event * events)


def min_samples_for_failure_bound(failure_probability: float,
                                  confidence: float = 0.99) -> int:
    """Number of independent runs needed so that *zero observed
    failures* certifies the failure probability is below
    ``failure_probability`` with the given ``confidence``.

    Solves ``(1 - p)^k <= 1 - confidence`` for ``k``.
    """
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            f"failure_probability must lie in (0, 1), got {failure_probability}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    return math.ceil(math.log(1.0 - confidence)
                     / math.log(1.0 - failure_probability))
