"""Shared utilities for the DR-model reproduction.

This package is dependency-free (standard library only) and holds the
plumbing shared by the simulator, the protocols, and the benchmarks:

- :mod:`repro.util.rng` — seeded, stream-splittable randomness so every
  simulation run is reproducible from a single integer seed.
- :mod:`repro.util.bitarrays` — a compact bit-vector type used for the
  source array ``X`` and for peer outputs.
- :mod:`repro.util.chernoff` — Chernoff/Hoeffding helpers used by tests
  that check "with high probability" claims quantitatively.
- :mod:`repro.util.validation` — small argument-checking helpers shared
  by public constructors.
"""

from repro.util.bitarrays import BitArray
from repro.util.rng import SplittableRNG, derive_seed
from repro.util.validation import (
    check_fraction,
    check_index,
    check_positive,
    check_range,
)

__all__ = [
    "BitArray",
    "SplittableRNG",
    "derive_seed",
    "check_fraction",
    "check_index",
    "check_positive",
    "check_range",
]
