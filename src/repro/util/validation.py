"""Argument-validation helpers used throughout the public API.

Every public constructor in the library validates its arguments eagerly
and raises :class:`ValueError`/:class:`TypeError` with a message naming
the offending parameter.  Centralizing the checks keeps the error
messages uniform and the call sites one-liners.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: Any) -> int:
    """Require ``value`` to be a positive integer and return it.

    Booleans are rejected even though ``bool`` subclasses ``int``:
    passing ``True`` for a count is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(name: str, value: Any) -> int:
    """Require ``value`` to be a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_fraction(name: str, value: Any, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Require ``value`` to be a fraction in ``[0, 1]`` and return it.

    The bounds can be made exclusive: the fault fraction ``beta`` for
    instance must satisfy ``0 <= beta < 1``.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        low = "[0" if inclusive_low else "(0"
        high = "1]" if inclusive_high else "1)"
        raise ValueError(f"{name} must lie in {low}, {high}, got {value}")
    return value


def check_index(name: str, value: Any, length: int) -> int:
    """Require ``value`` to be a valid index into a sequence of ``length``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < length:
        raise ValueError(f"{name} must lie in [0, {length}), got {value}")
    return value


def check_range(name: str, lo: int, hi: int, length: int) -> tuple[int, int]:
    """Require ``[lo, hi)`` to be a valid sub-range of ``[0, length)``."""
    if not (isinstance(lo, int) and isinstance(hi, int)):
        raise TypeError(f"{name} bounds must be ints, got ({lo!r}, {hi!r})")
    if not 0 <= lo <= hi <= length:
        raise ValueError(
            f"{name} must satisfy 0 <= lo <= hi <= {length}, got [{lo}, {hi})")
    return lo, hi
