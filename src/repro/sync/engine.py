"""Lockstep synchronous execution of the DR model.

The target paper's prior-work rows (and the companion DISC/PODC paper
itself) live in the classic synchronous model: computation proceeds in
global rounds; every message sent in round ``r`` arrives before round
``r + 1``; queries are answered within the round.  The asynchronous
kernel can *emulate* synchrony (unit latencies), but round-native
execution is worth having on its own:

- **round complexity is exact** — the engine counts rounds, which is
  the synchronous papers' time measure;
- the classic **rushing adversary** is expressible: corrupted peers
  choose their round-``r`` messages *after* seeing every honest
  round-``r`` message;
- protocols read naturally, one ``round()`` method per paper round.

The engine is deliberately independent of :mod:`repro.sim` — a
hundred-line loop, not an event heap — because lockstep needs none of
the machinery (and sharing it would couple the two time models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.schema import SCHEMA_VERSION
from repro.obs.telemetry import get_backend as _get_telemetry
from repro.sim.messages import Message
from repro.topology import resolve_topology
from repro.topology.routing import Router
from repro.util.bitarrays import BitArray, canonical_indices, mask_to_set
from repro.util.rng import SplittableRNG, derive_seed
from repro.util.validation import check_nonnegative, check_positive

#: Safety cap: no protocol in this library needs more rounds.
MAX_ROUNDS = 10_000


@dataclass
class SyncConfig:
    """Shared parameters of one synchronous execution.

    ``topology`` is the run's :class:`~repro.topology.Topology` when
    connectivity is sparse, else ``None`` (the model's complete
    graph).  Round-native protocols may read it — e.g. to size their
    waiting windows by ``topology.diameter``, the lockstep bound on
    how late a routed broadcast can arrive.
    """

    n: int
    t: int
    ell: int
    topology: Optional[object] = None

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_nonnegative("t", self.t)
        check_positive("ell", self.ell)
        if self.t >= self.n:
            raise ValueError(f"t={self.t} must be below n={self.n}")


class SyncSource:
    """Round-synchronous source: queries are answered immediately.

    With ``k > 1`` the source becomes a round-native analogue of the
    async :class:`~repro.sim.sourceset.SourceSet`: ``k`` endpoints,
    each answering from a per-source fault model's view
    (:mod:`repro.sim.sourceset` fault classes are reused verbatim).
    Round-model mapping of the fault grammar: ``@onset`` compares
    against the round number; ``withhold`` answers nothing (an empty
    response this round — synchrony means there is no "later");
    ``slow`` degenerates to honest, since the model answers every query
    within the round by definition.
    """

    def __init__(self, data: BitArray, *, k: int = 1, faults=(),
                 rng: Optional[SplittableRNG] = None) -> None:
        from repro.sim.sourceset import parse_faults
        self.data = data
        check_positive("sources", k)
        self.k = k
        self.faults = parse_faults(faults, k)
        self.query_bits_by_peer: dict[int, int] = {}
        self._queried_masks: dict[int, int] = {}
        self._per_source_masks: dict[tuple[int, int], int] = {}
        #: Live telemetry backend (or None) + current round, both set by
        #: the engine so query events carry round-native timestamps.
        self.telemetry = None
        self.telemetry_round = 0
        view_rng = rng if rng is not None else SplittableRNG(0)
        self._views = [
            fault.build_view(self.data, view_rng.split(f"source-{sid}"))
            for sid, fault in enumerate(self.faults)]

    @property
    def queried_indices(self) -> dict[int, set[int]]:
        """Distinct positions each peer has queried, as plain sets."""
        return {pid: mask_to_set(mask)
                for pid, mask in self._queried_masks.items()}

    @property
    def queried_by_source(self) -> dict[tuple[int, int], set[int]]:
        """Positions queried per ``(peer, source)`` pair."""
        return {key: mask_to_set(mask)
                for key, mask in self._per_source_masks.items()}

    def query(self, pid: int, indices: Sequence[int]) -> dict[int, int]:
        return self.query_from(0, pid, indices)

    def query_from(self, source_id: int, pid: int,
                   indices: Sequence[int]) -> dict[int, int]:
        """Query endpoint ``source_id``; charged like any query.

        A withholding endpoint returns ``{}`` (charged anyway — the
        bits were requested); other faults answer from their view once
        the round has reached their onset.
        """
        if not 0 <= source_id < self.k:
            raise ValueError(f"source {source_id} out of range "
                             f"[0, {self.k})")
        unique, mask = canonical_indices(indices, len(self.data))
        self.query_bits_by_peer[pid] = \
            self.query_bits_by_peer.get(pid, 0) + len(unique)
        self._queried_masks[pid] = self._queried_masks.get(pid, 0) | mask
        key = (pid, source_id)
        self._per_source_masks[key] = \
            self._per_source_masks.get(key, 0) | mask
        if self.telemetry is not None:
            event = {"t": float(self.telemetry_round), "peer": pid,
                     "bits": len(unique)}
            if self.k > 1:
                event["source"] = source_id
            self.telemetry.emit("query", event)
        fault = self.faults[source_id]
        if self.telemetry_round < fault.onset:
            view = self.data
        elif fault.withholding:
            return {}
        else:
            view = fault.view_for(pid)
            if view is None:
                view = self._views[source_id]
        return dict(zip(unique, view.get_many(unique)))


class SyncPeer:
    """Base class for round-native protocol peers.

    Subclasses implement :meth:`round`, which receives the round number
    and the messages delivered at the end of the previous round, and
    returns the messages to send this round (destination -> message,
    or the :meth:`broadcast` shorthand).  Query the source with
    ``self.query(indices)``; terminate by calling :meth:`finish`.
    """

    def __init__(self, pid: int, config: SyncConfig,
                 rng: SplittableRNG) -> None:
        self.pid = pid
        self.config = config
        self.rng = rng
        self.output: Optional[BitArray] = None
        self.finished_round: Optional[int] = None
        #: Deadline-aware waiting: a peer parked until round ``r`` (set
        #: this to ``r``) is deliberate silence, not a stall — the
        #: engine's quiet-round detector skips rounds where any live
        #: peer still has an unexpired deadline (how a peer waits out a
        #: routed broadcast's worst-case ``diameter`` rounds).
        self.waiting_until: Optional[int] = None
        self._source: Optional[SyncSource] = None
        self._outbox: dict[int, list[Message]] = {}

    # -- conveniences ------------------------------------------------------

    @property
    def n(self) -> int:
        return self.config.n

    @property
    def t(self) -> int:
        return self.config.t

    @property
    def ell(self) -> int:
        return self.config.ell

    @property
    def done(self) -> bool:
        return self.output is not None

    def query(self, indices: Sequence[int]) -> dict[int, int]:
        """Query the source (answered within the round)."""
        return self._source.query(self.pid, indices)

    def send(self, destination: int, message: Message) -> None:
        """Queue one message for end-of-round delivery."""
        self._outbox.setdefault(destination, []).append(message)

    def broadcast(self, message: Message) -> None:
        """Queue ``message`` to every other peer."""
        for destination in range(self.n):
            if destination != self.pid:
                self.send(destination, message)

    def finish(self, output: BitArray) -> None:
        """Terminate with ``output`` (recorded with the current round)."""
        self.output = output

    # -- protocol hook --------------------------------------------------------

    def round(self, round_no: int, inbox: list[Message]) -> None:
        """One protocol round; override in subclasses."""
        raise NotImplementedError


@dataclass
class SyncRunResult:
    """Outcome of one synchronous execution."""

    data: BitArray
    outputs: dict[int, Optional[BitArray]]
    rounds: int
    honest: set[int]
    faulty: set[int]
    query_complexity: int
    total_query_bits: int
    message_complexity: int
    per_peer_query_bits: dict[int, int] = field(default_factory=dict)
    #: Total payload+header bits sent by non-corrupted peers (the
    #: message analogue of ``total_query_bits``).
    message_bits: int = 0
    #: Messages sent per honest peer (mirrors ``per_peer_query_bits``).
    per_peer_messages: dict[int, int] = field(default_factory=dict)
    #: Messages delivered across the run (the lockstep analogue of the
    #: async kernel's processed-event count).
    events_processed: int = 0

    @property
    def download_correct(self) -> bool:
        return all(self.outputs.get(pid) == self.data
                   for pid in self.honest)


class SyncAdversary:
    """Synchronous adversary: corruption, rushing, mid-round crashes.

    Hooks (all optional):

    - :meth:`corrupted` — the Byzantine set (fixed for the run);
    - :meth:`rush` — called after honest peers produced their round
      messages; returns the corrupted peers' outbound messages, with
      full knowledge of the honest traffic (the rushing power);
    - :meth:`filter_sends` — may drop a suffix of a peer's outbound
      (mid-round crash) or return None to pass everything;
    - :meth:`crashed_before_round` — peers that are dead from this
      round on.
    """

    def corrupted(self, n: int) -> set[int]:
        return set()

    def crashed_before_round(self, round_no: int, n: int) -> set[int]:
        return set()

    def rush(self, round_no: int, honest_traffic, config: SyncConfig,
             source: SyncSource):
        """Return {corrupted_pid: {destination: [messages]}}."""
        return {}

    def filter_sends(self, pid: int, round_no: int,
                     outbox: dict[int, list[Message]]):
        return outbox


class SyncEngine:
    """Run peers in lockstep rounds until every honest peer finishes."""

    def __init__(self, *, config: SyncConfig, data: BitArray,
                 peer_factory, adversary: Optional[SyncAdversary] = None,
                 seed: int = 0, sources: int = 1,
                 source_faults=()) -> None:
        if len(data) != config.ell:
            raise ValueError(
                f"data has {len(data)} bits, config says {config.ell}")
        self.config = config
        self.data = data.copy()
        self.seed = seed
        self.adversary = adversary or SyncAdversary()
        #: Seeded shortest-path router, or ``None`` on the complete
        #: graph.  A message over an ``h``-hop route is read by its
        #: destination ``h`` rounds after it was sent: each hop takes
        #: one round, each relay forward is charged as one message to
        #: the relaying peer, and a relay that crashes mid-route
        #: severs it.
        self.router = (Router(config.topology,
                              seed=derive_seed(seed, "routing"))
                       if config.topology is not None else None)
        #: In-flight routed messages: ``(hops, index, message,
        #: honest_origin)`` with the message parked at
        #: ``hops[index + 1]``, forwarded at the next delivery step.
        self._relays: list[tuple] = []
        root = SplittableRNG(seed)
        # Faulty views come from stateless splits labelled by endpoint,
        # so a k=1 honest run draws nothing extra and stays identical
        # to the single-source engine (the golden traces pin this).
        self.source = SyncSource(self.data.copy(), k=sources,
                                 faults=source_faults, rng=root)
        self.corrupted = set(self.adversary.corrupted(config.n))
        if len(self.corrupted) > config.t:
            raise ValueError(
                f"adversary corrupts {len(self.corrupted)} peers, "
                f"budget is t={config.t}")
        self.peers: dict[int, SyncPeer] = {}
        for pid in range(config.n):
            if pid in self.corrupted:
                continue  # corrupted peers exist only through rush()
            peer = peer_factory(pid, config, root.split(f"peer-{pid}"))
            peer._source = self.source
            self.peers[pid] = peer
        self.messages_sent = 0
        self.message_bits = 0
        self.per_peer_messages: dict[int, int] = {}
        self.crashed: set[int] = set()

    #: Consecutive rounds with no traffic and no termination before the
    #: engine declares the run stalled (a deterministic protocol repeats
    #: such a round forever; randomized ones get a few retries).
    STALL_LIMIT = 3

    def run(self, max_rounds: int = MAX_ROUNDS) -> SyncRunResult:
        # Resolve the process-global telemetry backend once per run,
        # mirroring the async Simulation: a disabled backend costs one
        # check here and nothing per round.
        backend = _get_telemetry()
        sink = backend if backend.enabled else None
        self.source.telemetry = sink
        if sink is not None:
            header = {"schema": SCHEMA_VERSION, "n": self.config.n,
                      "ell": self.config.ell, "t_budget": self.config.t,
                      "seed": self.seed,
                      "adversary": type(self.adversary).__name__,
                      "planned_faulty": sorted(self.corrupted)}
            if self.peers:
                header["protocol"] = type(
                    next(iter(self.peers.values()))).__name__
            sink.emit("run_header", header)
        inboxes: dict[int, list[Message]] = {pid: []
                                             for pid in range(self.config.n)}
        rounds = 0
        quiet_rounds = 0
        events_processed = 0
        for round_no in range(1, max_rounds + 1):
            newly_crashed = self.adversary.crashed_before_round(
                round_no, self.config.n) - self.crashed
            self.crashed |= newly_crashed
            live_honest = [pid for pid, peer in sorted(self.peers.items())
                           if not peer.done and pid not in self.crashed]
            if not live_honest:
                break
            rounds = round_no
            self.source.telemetry_round = round_no
            if sink is not None:
                sink.emit("round_start", {"t": float(round_no),
                                          "round": round_no})
                for pid in sorted(newly_crashed):
                    sink.emit("crash", {"t": float(round_no), "peer": pid})

            # 1. Honest peers act (ascending ID; they cannot see each
            #    other's round-r messages, so the order is cosmetic).
            honest_traffic: dict[int, dict[int, list[Message]]] = {}
            for pid in live_honest:
                peer = self.peers[pid]
                peer._outbox = {}
                peer.round(round_no, inboxes[pid])
                inboxes[pid] = []
                if peer.done and peer.finished_round is None:
                    peer.finished_round = round_no
                    if sink is not None:
                        sink.emit("terminate", {"t": float(round_no),
                                                "peer": pid})
                outbox = self.adversary.filter_sends(pid, round_no,
                                                     peer._outbox)
                honest_traffic[pid] = outbox or {}

            # 2. Corrupted peers rush: they see all honest round-r
            #    traffic before committing their own.
            byzantine_traffic = self.adversary.rush(
                round_no, honest_traffic, self.config, self.source)

            # 3. End-of-round delivery.  In-flight relay hops move
            #    first (they were sent in earlier rounds), then this
            #    round's traffic is dispatched — directly on edges,
            #    through the relay queue otherwise.
            next_inboxes: dict[int, list[Message]] = {
                pid: inboxes[pid] for pid in range(self.config.n)}
            delivered = 0
            if self._relays:
                pending, self._relays = self._relays, []
                for hops, index, message, honest_origin in pending:
                    node = hops[index + 1]
                    if node in self.crashed:
                        continue  # route severed at a crashed relay
                    hop = index + 1
                    next_node = hops[index + 2]
                    kind = type(message).__name__
                    if sink is not None:
                        sink.emit("deliver", {
                            "t": float(round_no), "src": hops[index],
                            "dst": node, "type": kind,
                            "relay": True, "hop": hop})
                        sink.emit("send", {
                            "t": float(round_no), "src": node,
                            "dst": next_node, "type": kind,
                            "bits": message.size_bits(),
                            "honest": honest_origin,
                            "relay": True, "hop": hop + 1})
                    if honest_origin and node not in self.corrupted:
                        self.messages_sent += 1
                        self.per_peer_messages[node] = \
                            self.per_peer_messages.get(node, 0) + 1
                        self.message_bits += message.size_bits()
                    delivered += 1
                    if index + 3 == len(hops):
                        next_inboxes[next_node].append(message)
                        if sink is not None:
                            sink.emit("deliver", {
                                "t": float(round_no),
                                "src": getattr(message, "sender", hops[0]),
                                "dst": next_node, "type": kind,
                                "hop": hop + 1})
                    else:
                        self._relays.append(
                            (hops, index + 1, message, honest_origin))
            for traffic in (honest_traffic, byzantine_traffic):
                for sender, outbox in traffic.items():
                    honest_sender = sender not in self.corrupted
                    for destination, messages in outbox.items():
                        if self.router is not None and sender != destination:
                            hops = self.router.path(sender, destination)
                            if len(hops) > 2:
                                # Routed: charge and announce the origin
                                # transmission now, park the messages at
                                # the first relay.
                                delivered += len(messages)
                                if honest_sender:
                                    self.messages_sent += len(messages)
                                    self.per_peer_messages[sender] = \
                                        self.per_peer_messages.get(
                                            sender, 0) + len(messages)
                                    self.message_bits += sum(
                                        message.size_bits()
                                        for message in messages)
                                for message in messages:
                                    if sink is not None:
                                        sink.emit("send", {
                                            "t": float(round_no),
                                            "src": sender,
                                            "dst": destination,
                                            "type": type(message).__name__,
                                            "bits": message.size_bits(),
                                            "honest": honest_sender})
                                    self._relays.append(
                                        (hops, 0, message, honest_sender))
                                continue
                        next_inboxes[destination].extend(messages)
                        delivered += len(messages)
                        if honest_sender:
                            self.messages_sent += len(messages)
                            self.per_peer_messages[sender] = \
                                self.per_peer_messages.get(sender, 0) + \
                                len(messages)
                            self.message_bits += sum(
                                message.size_bits() for message in messages)
                        if sink is not None:
                            for message in messages:
                                kind = type(message).__name__
                                sink.emit("send", {
                                    "t": float(round_no), "src": sender,
                                    "dst": destination, "type": kind,
                                    "bits": message.size_bits(),
                                    "honest": honest_sender})
                                sink.emit("deliver", {
                                    "t": float(round_no), "src": sender,
                                    "dst": destination, "type": kind})
            inboxes = next_inboxes
            events_processed += delivered

            # Stall detection: a round with no traffic and no new
            # termination repeats forever for deterministic protocols
            # (the synchronous analogue of the async DeadlockError).
            finished_round = sum(
                1 for pid in live_honest
                if self.peers[pid].finished_round == round_no)
            if sink is not None:
                sink.emit("round_end", {"t": float(round_no),
                                        "round": round_no,
                                        "delivered": delivered,
                                        "finished": finished_round})
            waiting = any(
                self.peers[pid].waiting_until is not None
                and self.peers[pid].waiting_until > round_no
                for pid in live_honest)
            if delivered == 0 and not finished_round \
                    and not self._relays and not waiting:
                quiet_rounds += 1
                if quiet_rounds >= self.STALL_LIMIT:
                    break
            else:
                quiet_rounds = 0

        honest = set(self.peers) - self.crashed
        per_peer = {pid: self.source.query_bits_by_peer.get(pid, 0)
                    for pid in honest}
        per_messages = {pid: self.per_peer_messages.get(pid, 0)
                        for pid in honest}
        result = SyncRunResult(
            data=self.data,
            outputs={pid: peer.output for pid, peer in self.peers.items()},
            rounds=rounds,
            honest=honest,
            faulty=self.corrupted | self.crashed,
            query_complexity=max(per_peer.values(), default=0),
            total_query_bits=sum(per_peer.values()),
            message_complexity=self.messages_sent,
            per_peer_query_bits=per_peer,
            message_bits=self.message_bits,
            per_peer_messages=per_messages,
            events_processed=events_processed,
        )
        if sink is not None:
            sink.emit("run_summary", {
                "correct": bool(result.download_correct),
                "query_complexity": result.query_complexity,
                "total_query_bits": result.total_query_bits,
                "message_complexity": result.message_complexity,
                "message_bits": result.message_bits,
                "time_complexity": float(result.rounds),
                "events_processed": result.events_processed,
                "honest": sorted(honest),
                "faulty": sorted(result.faulty),
                "per_peer_query_bits": dict(per_peer),
                "per_peer_messages": dict(per_messages),
            })
        return result


def run_sync_download(*, n: int, ell: int, t: int = 0, peer_factory,
                      data: Optional[BitArray] = None,
                      adversary: Optional[SyncAdversary] = None,
                      seed: int = 0, sources: int = 1,
                      source_faults=(), topology=None) -> SyncRunResult:
    """One-call convenience mirroring :func:`repro.sim.run_download`."""
    config = SyncConfig(n=n, t=t, ell=ell,
                        topology=resolve_topology(topology, n, seed))
    if data is None:
        data = BitArray.random(ell, SplittableRNG(seed).split("input"))
    engine = SyncEngine(config=config, data=data, peer_factory=peer_factory,
                        adversary=adversary, seed=seed, sources=sources,
                        source_faults=source_faults)
    return engine.run()
