"""Round-native synchronous DR model (the prior-work setting).

A lockstep engine (:mod:`~repro.sync.engine`), the synchronous
originals of the paper's protocols (:mod:`~repro.sync.protocols`), and
round-model adversaries including the classic *rushing* Byzantine
adversary (:mod:`~repro.sync.adversaries`).  Round counts here are the
exact round complexity the synchronous papers report.
"""

from repro.sync.adversaries import (
    RoundCrashAdversary,
    RushingEchoAdversary,
    SilentSyncAdversary,
    fraction_corrupted,
)
from repro.sync.engine import (
    SyncAdversary,
    SyncConfig,
    SyncEngine,
    SyncPeer,
    SyncRunResult,
    SyncSource,
    run_sync_download,
)
from repro.sync.protocols import (
    EscalationAlert,
    SyncBalancedPeer,
    SyncCrashPeer,
    SyncCommitteePeer,
    SyncCrossValidateEscalatePeer,
    SyncCrossValidatePeer,
    SyncNaivePeer,
    SyncTwoRoundPeer,
)

__all__ = [
    "EscalationAlert",
    "RoundCrashAdversary",
    "RushingEchoAdversary",
    "SilentSyncAdversary",
    "SyncAdversary",
    "SyncBalancedPeer",
    "SyncCommitteePeer",
    "SyncConfig",
    "SyncCrashPeer",
    "SyncCrossValidateEscalatePeer",
    "SyncCrossValidatePeer",
    "SyncEngine",
    "SyncNaivePeer",
    "SyncPeer",
    "SyncRunResult",
    "SyncSource",
    "SyncTwoRoundPeer",
    "fraction_corrupted",
    "run_sync_download",
]
