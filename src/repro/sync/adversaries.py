"""Synchronous adversaries: rushing Byzantine corruption, round crashes.

The lockstep engine's adversary sees every honest round-``r`` message
before the corrupted peers commit theirs — the classic *rushing*
power, strictly stronger than anything the asynchronous cycle
restriction permits.  The committee protocol's ``t + 1``-identical
acceptance and the tau-frequency filter must hold against it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.sim.messages import Message
from repro.sync.engine import SyncAdversary, SyncConfig, SyncSource
from repro.util.rng import SplittableRNG
from repro.util.validation import check_fraction


def _flip_string(string: str) -> str:
    return "".join("1" if ch == "0" else "0" for ch in string)


class RushingEchoAdversary(SyncAdversary):
    """Corrupted peers copy an honest peer's round traffic — flipped.

    The strongest "plausible liar": every fake is perfectly formed
    (right type, right length, right timing) because it is a real
    honest message with its bit-payload inverted.  Rushing makes it
    possible: the fakes are crafted *after* seeing the honest originals.
    """

    def __init__(self, *, corrupted: set[int],
                 seed: int = 0) -> None:
        self.corrupted_set = set(corrupted)
        self.rng = SplittableRNG(seed).split("rushing")

    def corrupted(self, n: int) -> set[int]:
        return set(self.corrupted_set)

    def rush(self, round_no: int, honest_traffic, config: SyncConfig,
             source: SyncSource):
        # Pick the busiest honest sender this round as the template.
        template_pid = None
        best = -1
        for pid, outbox in honest_traffic.items():
            volume = sum(len(msgs) for msgs in outbox.values())
            if volume > best:
                template_pid, best = pid, volume
        traffic = {}
        if template_pid is None or best == 0:
            return traffic
        template = honest_traffic[template_pid]
        for attacker in self.corrupted_set:
            outbox: dict[int, list[Message]] = {}
            for destination, messages in template.items():
                fakes = []
                for message in messages:
                    fake = message
                    replacements = {"sender": attacker}
                    for field in dataclasses.fields(message):
                        value = getattr(message, field.name)
                        if isinstance(value, str) and value \
                                and set(value) <= {"0", "1"}:
                            replacements[field.name] = _flip_string(value)
                    fake = dataclasses.replace(message, **replacements)
                    fakes.append(fake)
                outbox[destination] = fakes
            # Also lie to the template peer itself.
            outbox.setdefault(template_pid, outbox.get(
                min(template, default=template_pid), []))
            traffic[attacker] = outbox
        return traffic


class SilentSyncAdversary(SyncAdversary):
    """Corrupted peers never speak (pure omission)."""

    def __init__(self, *, corrupted: set[int]) -> None:
        self.corrupted_set = set(corrupted)

    def corrupted(self, n: int) -> set[int]:
        return set(self.corrupted_set)


class RoundCrashAdversary(SyncAdversary):
    """Crash peers at chosen rounds, optionally mid-broadcast.

    ``plan[pid] = (round, keep)``: from ``round`` on the peer is dead;
    in its final round only the first ``keep`` destinations (ascending)
    of its outbox still go out — the synchronous analogue of crashing
    "after some but not all" sends.  ``keep=None`` delivers the full
    final round.
    """

    def __init__(self, plan: dict[int, tuple[int, Optional[int]]]) -> None:
        self.plan = dict(plan)

    def crashed_before_round(self, round_no: int, n: int) -> set[int]:
        return {pid for pid, (round_limit, _) in self.plan.items()
                if round_no > round_limit}

    def filter_sends(self, pid: int, round_no: int, outbox):
        spec = self.plan.get(pid)
        if spec is None:
            return outbox
        round_limit, keep = spec
        if round_no < round_limit:
            return outbox
        if round_no > round_limit:
            return {}
        if keep is None:
            return outbox
        kept = {}
        for slot, destination in enumerate(sorted(outbox)):
            if slot >= keep:
                break
            kept[destination] = outbox[destination]
        return kept


def fraction_corrupted(n: int, fraction: float, seed: int = 0) -> set[int]:
    """Seeded corrupted-set helper for the synchronous adversaries."""
    check_fraction("fraction", fraction, inclusive_high=False)
    count = int(fraction * n)
    return set(SplittableRNG(seed).split("sync-corrupt")
               .sample(range(n), count))
