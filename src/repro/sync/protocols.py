"""Round-native synchronous Download protocols.

The paper's prior-work rows, implemented in their native form — one
``round()`` method per paper round, so the engine's round counter *is*
the round complexity the synchronous papers report:

- :class:`SyncNaivePeer` — 1 round (query everything, say nothing);
- :class:`SyncBalancedPeer` — 2 rounds, fault-free ``ell/n``;
- :class:`SyncCommitteePeer` — 2 rounds, the deterministic committee
  protocol of [3] (the protocol Theorem 3.4 asynchronizes);
- :class:`SyncTwoRoundPeer` — 2 rounds, Protocol 4's synchronous
  original: sample-and-broadcast, then decision trees, with the
  separating-index queries answered inside round 2.
- :class:`SyncCrossValidatePeer` — 1 round, the round-native form of
  the multi-source cross-validation protocol (query ``q`` of the
  engine's ``k`` endpoints, vote-decode every position).
- :class:`SyncCrossValidateEscalatePeer` — 1 round optimistically
  (``f + 1`` endpoints, unanimity), 2 on disagreement (escalate to
  all ``2f + 1``, majority decode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.assignment import committee_for, round_robin_indices
from repro.core.decision_tree import build_tree, determine
from repro.core.frequent import FrequencyTable
from repro.core.segments import Segmentation
from repro.protocols.balanced import ShareMessage
from repro.protocols.byz_committee import CommitteeReport
from repro.protocols.byz_two_cycle import SegmentReport
from repro.protocols.decode import (
    majority_decode,
    majority_threshold,
    threshold_decode,
)
from repro.sim.messages import Message
from repro.sync.engine import SyncConfig, SyncPeer
from repro.util.bitarrays import BitArray
from repro.util.rng import SplittableRNG


@dataclass(frozen=True)
class EscalationAlert(Message):
    """Disagreement notice of the escalate protocol's ``alert`` path.

    Broadcast by a peer whose optimistic ``f + 1`` votes were not
    unanimous; every receiver escalates to the full ``2f + 1``
    endpoints.  Routed topologies deliver it up to ``diameter`` rounds
    late, which is exactly the waiting window alert-mode peers hold
    open before trusting their unanimous round-1 votes.
    """

    round_no: int = 0


class _ArrayBuilder:
    """Tiny helper: accumulate bits, detect completion."""

    def __init__(self, ell: int) -> None:
        self.bits: list[Optional[int]] = [None] * ell

    def put(self, index: int, bit: int) -> None:
        if self.bits[index] is None:
            self.bits[index] = bit

    def put_values(self, values: dict[int, int]) -> None:
        for index, bit in values.items():
            self.put(index, bit)

    def put_string(self, lo: int, string: str) -> None:
        for offset, ch in enumerate(string):
            self.put(lo + offset, int(ch))

    @property
    def complete(self) -> bool:
        return all(bit is not None for bit in self.bits)

    def to_array(self) -> BitArray:
        return BitArray.from_bits([bit or 0 for bit in self.bits])


class SyncNaivePeer(SyncPeer):
    """Round 1: query all ``ell`` bits, output, stop."""

    def round(self, round_no: int, inbox) -> None:
        values = self.query(range(self.ell))
        builder = _ArrayBuilder(self.ell)
        builder.put_values(values)
        self.finish(builder.to_array())


class SyncBalancedPeer(SyncPeer):
    """Round 1: query own slice, broadcast.  Round 2: assemble."""

    def __init__(self, pid: int, config: SyncConfig,
                 rng: SplittableRNG) -> None:
        super().__init__(pid, config, rng)
        self.builder = _ArrayBuilder(config.ell)

    def round(self, round_no: int, inbox) -> None:
        if round_no == 1:
            values = self.query(round_robin_indices(self.pid, self.ell,
                                                    self.n))
            self.builder.put_values(values)
            self.broadcast(ShareMessage(sender=self.pid, values=values))
            return
        for message in inbox:
            if isinstance(message, ShareMessage):
                self.builder.put_values(message.values)
        if self.builder.complete:
            self.finish(self.builder.to_array())


class SyncCommitteePeer(SyncPeer):
    """The [3] committee protocol, 2 rounds, ``2t < n``."""

    def __init__(self, pid: int, config: SyncConfig, rng: SplittableRNG,
                 block_size: int = 1) -> None:
        super().__init__(pid, config, rng)
        if 2 * config.t >= config.n:
            raise ValueError(f"committee protocol needs 2t < n, got "
                             f"t={config.t}, n={config.n}")
        import math
        self.blocks = Segmentation(config.ell,
                                   max(1, math.ceil(config.ell / block_size)))
        self.committee_size = 2 * config.t + 1
        self.builder = _ArrayBuilder(config.ell)

    def round(self, round_no: int, inbox) -> None:
        if round_no == 1:
            for block in range(self.blocks.num_segments):
                committee = committee_for(block, self.committee_size, self.n)
                if self.pid not in committee:
                    continue
                lo, hi = self.blocks.bounds(block)
                values = self.query(range(lo, hi))
                self.builder.put_values(values)
                string = "".join("1" if values[index] else "0"
                                 for index in range(lo, hi))
                self.broadcast(CommitteeReport(sender=self.pid, block=block,
                                               string=string))
            return
        # Round 2: accept each block with t+1 identical member reports.
        support: dict[tuple[int, str], set[int]] = {}
        for message in inbox:
            if not isinstance(message, CommitteeReport):
                continue
            if not 0 <= message.block < self.blocks.num_segments:
                continue
            committee = committee_for(message.block, self.committee_size,
                                      self.n)
            if message.sender not in committee:
                continue
            lo, hi = self.blocks.bounds(message.block)
            if len(message.string) != hi - lo:
                continue
            support.setdefault((message.block, message.string),
                               set()).add(message.sender)
        for (block, string), senders in support.items():
            if len(senders) >= self.t + 1:
                lo, _ = self.blocks.bounds(block)
                self.builder.put_string(lo, string)
        if self.builder.complete:
            self.finish(self.builder.to_array())


class SyncTwoRoundPeer(SyncPeer):
    """Protocol 4's synchronous original: sample, then decision trees.

    Round complexity exactly 2; queries in round 2 are the separating
    indices of the decision trees (answered within the round — the
    synchronous model's source replies immediately).
    """

    def __init__(self, pid: int, config: SyncConfig, rng: SplittableRNG,
                 num_segments: int = 4, tau: int = 2) -> None:
        super().__init__(pid, config, rng)
        self.segmentation = Segmentation(config.ell, num_segments)
        self.tau = tau
        self.builder = _ArrayBuilder(config.ell)
        self.picked: Optional[int] = None

    def round(self, round_no: int, inbox) -> None:
        if round_no == 1:
            self.picked = self.rng.randrange(self.segmentation.num_segments)
            lo, hi = self.segmentation.bounds(self.picked)
            values = self.query(range(lo, hi))
            self.builder.put_values(values)
            string = "".join("1" if values[index] else "0"
                             for index in range(lo, hi))
            self.broadcast(SegmentReport(sender=self.pid,
                                         segment=self.picked, string=string))
            return
        reports = FrequencyTable()
        for message in inbox:
            if not isinstance(message, SegmentReport):
                continue
            if not 0 <= message.segment < self.segmentation.num_segments:
                continue
            lo, hi = self.segmentation.bounds(message.segment)
            if len(message.string) != hi - lo:
                continue
            reports.add(message.sender, message.segment, message.string)
        for segment in range(self.segmentation.num_segments):
            if segment == self.picked:
                continue
            lo, hi = self.segmentation.bounds(segment)
            candidates = reports.frequent(segment, self.tau)
            if not candidates:
                self.builder.put_values(self.query(range(lo, hi)))
                continue
            tree = build_tree(candidates)
            string, _ = determine(
                tree,
                lambda index, base=lo: self.query([base + index])[base + index])
            self.builder.put_string(lo, string)
        self.finish(self.builder.to_array())


class SyncCrossValidatePeer(SyncPeer):
    """Round 1: query ``q`` of the ``k`` endpoints for everything,
    decode every position by vote, output, stop.

    The round-native form of
    :class:`~repro.protocols.multisource.CrossValidateDownloadPeer`:
    the synchronous source answers within the round, so the whole
    cross-validation collapses into a single round at ``q`` times the
    query bits.  Positions the decode rule cannot settle (the source
    faults defeated it) fall back to the lowest-numbered answering
    endpoint's bit, so the run terminates — incorrectly, which the
    engine's correctness check reports.
    """

    def __init__(self, pid: int, config: SyncConfig, rng: SplittableRNG,
                 q: Optional[int] = None, decode: str = "majority",
                 threshold: Optional[int] = None) -> None:
        super().__init__(pid, config, rng)
        if decode not in ("majority", "threshold"):
            raise ValueError(f"decode must be 'majority' or "
                             f"'threshold', got {decode!r}")
        self.decode = decode
        # q and threshold resolve against the source's k, which the
        # engine attaches after construction; validated in round 1.
        self._q = q
        self._threshold = threshold

    def round(self, round_no: int, inbox) -> None:
        source = self._source
        k = getattr(source, "k", 1)
        q = self._q if self._q is not None else k
        if not 1 <= q <= k:
            raise ValueError(f"q={q} must be in [1, k={k}]")
        threshold = (self._threshold if self._threshold is not None
                     else majority_threshold(q))
        if not 1 <= threshold <= q:
            raise ValueError(f"threshold={threshold} must be in "
                             f"[1, q={q}]")
        votes: dict[int, list[int]] = {index: []
                                       for index in range(self.ell)}
        fallback: dict[int, tuple[int, int]] = {}
        for j in range(q):
            sid = (self.pid + j) % k
            for index, bit in source.query_from(sid, self.pid,
                                                range(self.ell)).items():
                votes[index].append(bit)
                best = fallback.get(index)
                if best is None or sid < best[0]:
                    fallback[index] = (sid, bit)
        builder = _ArrayBuilder(self.ell)
        for index in range(self.ell):
            if self.decode == "majority":
                bit = majority_decode(votes[index], q)
            else:
                bit = threshold_decode(votes[index], threshold)
            if bit is None:
                if source.telemetry is not None:
                    source.telemetry.emit("source_disagreement", {
                        "t": float(round_no), "peer": self.pid,
                        "index": index, "votes": list(votes[index])})
                best = fallback.get(index)
                bit = best[1] if best is not None else 0
            builder.put(index, bit)
        self.finish(builder.to_array())


class SyncCrossValidateEscalatePeer(SyncPeer):
    """Optimistic round-native cross-validation with escalation.

    Round 1 queries the ``f + 1`` rotated endpoints
    ``(pid + j) % k`` for everything; a position whose votes are
    unanimous is settled, and if *every* position is, the peer
    finishes — one round at ``(f + 1) ell`` query bits, the
    optimistic case.  Any disagreement escalates the whole download:
    round 2 brings in the remaining ``f`` endpoints for the full
    ``2f + 1`` votes, decodes by strict majority, and falls back to
    the lowest-numbered answering endpoint where even that fails
    (terminating incorrectly, which the engine's correctness check
    reports).  Round complexity is therefore exactly 1 or 2 — the
    lockstep form of
    :class:`~repro.protocols.multisource.CrossValidateEscalateDownloadPeer`.
    """

    def __init__(self, pid: int, config: SyncConfig, rng: SplittableRNG,
                 f: int = 0, alert: bool = False) -> None:
        super().__init__(pid, config, rng)
        if f < 0:
            raise ValueError(f"f must be >= 0, got {f}")
        self.f = f
        #: The cooperative escalation path: a peer that sees
        #: disagreement broadcasts an :class:`EscalationAlert`, and
        #: *every* peer escalates on receipt — per-reader equivocation
        #: detected by one peer then hardens everyone's decode.
        #: Unanimous peers hold their output for the topology's
        #: ``diameter`` rounds (the routed broadcast's worst case)
        #: before trusting silence.  Off by default: the classic
        #: local-escalation behaviour (and its golden traces) is
        #: untouched.
        self.alert = alert
        self._alerted = False
        # k attaches with the source after construction; votes persist
        # across the escalation round.
        self._votes: Optional[dict[int, list[int]]] = None
        self._fallback: dict[int, tuple[int, int]] = {}
        self._held: Optional[BitArray] = None

    def _absorb(self, sid: int, answers: dict[int, int]) -> None:
        for index, bit in answers.items():
            self._votes[index].append(bit)
            best = self._fallback.get(index)
            if best is None or sid < best[0]:
                self._fallback[index] = (sid, bit)

    def _emit_disagreement(self, round_no: int, index: int) -> None:
        source = self._source
        if source.telemetry is not None:
            source.telemetry.emit("source_disagreement", {
                "t": float(round_no), "peer": self.pid,
                "index": index, "votes": list(self._votes[index])})

    def _alert_window(self) -> int:
        """Rounds a routed :class:`EscalationAlert` may take to arrive."""
        topology = self.config.topology
        return topology.diameter if topology is not None else 1

    def _escalate(self, round_no: int, chosen) -> None:
        """Bring in the remaining ``f`` endpoints and decide."""
        source = self._source
        for sid in chosen[self.f + 1:]:
            self._absorb(sid, source.query_from(
                sid, self.pid, range(self.ell)))
        builder = _ArrayBuilder(self.ell)
        for index in range(self.ell):
            bit = majority_decode(self._votes[index], 2 * self.f + 1)
            if bit is None:
                self._emit_disagreement(round_no, index)
                bit = self._fallback[index][1]
            builder.put(index, bit)
        self.finish(builder.to_array())

    def round(self, round_no: int, inbox) -> None:
        source = self._source
        k = getattr(source, "k", 1)
        if 2 * self.f + 1 > k:
            raise ValueError(f"escalation needs 2f + 1 <= k sources, "
                             f"got f={self.f}, k={k}")
        chosen = [(self.pid + j) % k for j in range(2 * self.f + 1)]
        if self._votes is None:
            self._votes = {index: [] for index in range(self.ell)}
            for sid in chosen[:self.f + 1]:
                self._absorb(sid, source.query_from(
                    sid, self.pid, range(self.ell)))
            disagreeing = [
                index for index in range(self.ell)
                if threshold_decode(self._votes[index],
                                    self.f + 1) is None]
            if not disagreeing:
                builder = _ArrayBuilder(self.ell)
                for index in range(self.ell):
                    builder.put(index, self._votes[index][0])
                if not self.alert:
                    self.finish(builder.to_array())
                    return
                # Alert mode: hold the unanimous output open for the
                # worst-case alert transit before trusting silence.
                self._held = builder.to_array()
                self.waiting_until = round_no + self._alert_window()
                return
            for index in disagreeing:
                self._emit_disagreement(round_no, index)
            if self.alert:
                self._alerted = True
                self.broadcast(EscalationAlert(sender=self.pid,
                                               round_no=round_no))
            return  # escalate next round
        if not self.alert:
            self._escalate(round_no, chosen)
            return
        heard_alert = any(isinstance(message, EscalationAlert)
                          for message in inbox)
        if self._alerted or heard_alert:
            self.waiting_until = None
            self._escalate(round_no, chosen)
            return
        if self.waiting_until is not None and round_no >= self.waiting_until:
            # Silence for a full alert window: every peer was unanimous.
            self.finish(self._held)


class SyncCrashPeer(SyncPeer):
    """Synchronous crash-tolerant download (any ``t < n``).

    The lockstep ancestor of Algorithm 2, exploiting what synchrony
    adds: a peer silent in round ``r`` has *provably* crashed by round
    ``r + 1`` (messages are reliable and on-time), so there is no
    slow-vs-crashed dilemma to manage.

    Per round, every unfinished peer (a) absorbs arrived shares,
    (b) gossips everything it learned since its last broadcast — so a
    value anyone holds floods the alive component within two rounds,
    even across the view divergence a mid-broadcast crash causes, and
    (c) reassigns *its* still-unknown bits over the peers that spoke
    last round (deterministic rank order) and queries its own part.
    A peer that completes broadcasts one final full share before
    terminating, so no one ever waits on a finished peer.

    A round in which no relevant peer crashes closes every remaining
    gap, so the protocol ends within ``crashes + 3`` rounds, and the
    per-peer query load stays within a constant of ``ell / (n - t)``
    (each crash re-spreads only the victim's residual share).
    """

    def __init__(self, pid: int, config: SyncConfig,
                 rng: SplittableRNG) -> None:
        super().__init__(pid, config, rng)
        self.builder = _ArrayBuilder(config.ell)
        self._fresh: dict[int, int] = {}  # learned since last broadcast

    def _learn(self, values: dict[int, int]) -> None:
        for index, bit in values.items():
            if self.builder.bits[index] is None:
                self._fresh[index] = bit
                self.builder.put(index, bit)

    def round(self, round_no: int, inbox) -> None:
        spoke_last_round = set()
        for message in inbox:
            if isinstance(message, ShareMessage):
                self._learn(message.values)
                spoke_last_round.add(message.sender)

        if round_no == 1:
            values = self.query(round_robin_indices(self.pid, self.ell,
                                                    self.n))
            self._learn(values)
            self.broadcast(ShareMessage(sender=self.pid,
                                        values=dict(self._fresh)))
            self._fresh = {}
            return

        if self.builder.complete:
            # Final full share: nobody may depend on a finished peer.
            everything = {index: bit
                          for index, bit in enumerate(self.builder.bits)}
            self.broadcast(ShareMessage(sender=self.pid, values=everything))
            self.finish(self.builder.to_array())
            return

        # Reassign my unknown bits over last round's speakers (+ me);
        # silence in the synchronous model is proof of death.
        alive = sorted(spoke_last_round | {self.pid})
        unknown = [index for index, bit in enumerate(self.builder.bits)
                   if bit is None]
        mine = [index for slot, index in enumerate(unknown)
                if alive[slot % len(alive)] == self.pid]
        self._learn(self.query(mine))
        self.broadcast(ShareMessage(sender=self.pid,
                                    values=dict(self._fresh)))
        self._fresh = {}
        if self.builder.complete:
            self.finish(self.builder.to_array())
