"""Adversary tooling: seeded fuzzing and the tournament league.

Two layers:

- :mod:`~repro.tournament.fuzzing` *generates* in-model adversaries
  from seeds (the former top-level ``repro.fuzz``, re-exported here
  and shimmed there for compatibility);
- :mod:`~repro.tournament.roster`, :mod:`~repro.tournament.league`,
  and :mod:`~repro.tournament.report` field the *named* adversaries
  against every protocol on every topology, aggregate the grid into a
  ranked league table, and render it (text / JSONL / dashboard JSON).

``repro tournament`` on the command line is a thin veneer over
:func:`run_tournament` + :func:`render_league`.
"""

from repro.tournament.fuzzing import (
    FuzzPlan,
    SourceFaultPlan,
    random_adversary,
    random_crash_plan,
    random_latency,
    random_source_faults,
)
from repro.tournament.league import (
    DEFAULT_PROTOCOLS,
    DEFAULT_TOPOLOGIES,
    LeagueCell,
    LeagueResult,
    TournamentConfig,
    ViolationExemplar,
    cell_spec,
    run_tournament,
)
from repro.tournament.report import (
    league_dashboard_payload,
    league_jsonl_lines,
    render_league,
)
from repro.tournament.roster import (
    DEFAULT_BETA,
    AdversaryEntry,
    all_adversaries,
    get_adversary,
    register_adversary,
)

__all__ = [
    "AdversaryEntry",
    "DEFAULT_BETA",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_TOPOLOGIES",
    "FuzzPlan",
    "LeagueCell",
    "LeagueResult",
    "SourceFaultPlan",
    "TournamentConfig",
    "ViolationExemplar",
    "all_adversaries",
    "cell_spec",
    "get_adversary",
    "league_dashboard_payload",
    "league_jsonl_lines",
    "random_adversary",
    "random_crash_plan",
    "random_latency",
    "random_source_faults",
    "register_adversary",
    "render_league",
    "run_tournament",
]
