"""The adversary roster: every named opponent the league fields.

An entry is a *spec fragment* — the ``(fault_model, beta, strategy)``
triple that, merged into an :class:`~repro.experiments.ExperimentSpec`,
puts that adversary on the pitch.  Keeping the roster declarative means
every cell of the tournament is an ordinary experiment spec: it flows
through the same validation, the same per-repeat seed derivation, the
same journal — and any cell can be replayed from its seed with
``repro run``/``repro sweep`` long after the league finished.

The stock roster covers the repo's whole adversary vocabulary: the
fault-free baseline, the crash adversary, the four static Byzantine
corruption strategies, and the dynamic (mobile) variants of the two
strategies where mobility matters most.  ``register_adversary`` adds
entries at runtime (tests use it; so can downstream studies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.spec import _FAULT_MODELS, _STRATEGIES


@dataclass(frozen=True)
class AdversaryEntry:
    """One league opponent, as the spec fragment that summons it."""

    name: str
    description: str
    fault_model: str
    beta: float
    strategy: str = "wrong-bits"

    def __post_init__(self) -> None:
        if self.fault_model not in _FAULT_MODELS:
            raise ValueError(f"fault_model must be one of "
                             f"{_FAULT_MODELS}, got {self.fault_model!r}")
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of "
                             f"{sorted(_STRATEGIES)}, "
                             f"got {self.strategy!r}")
        if self.fault_model == "none":
            if self.beta != 0.0:
                raise ValueError("the fault-free adversary has beta=0")
        elif not 0 < self.beta < 1:
            raise ValueError(f"beta must be in (0, 1) for faulty "
                             f"models, got {self.beta}")


#: Default corruption fraction for faulty roster entries — large enough
#: to defeat unhardened protocols, small enough that every registered
#: protocol's validity precondition (e.g. the committee's ``2t < n``)
#: still holds at tournament sizes.
DEFAULT_BETA = 0.4

_ROSTER: dict[str, AdversaryEntry] = {}


def register_adversary(entry: AdversaryEntry) -> AdversaryEntry:
    """Add (or replace) a roster entry; returns it for chaining."""
    _ROSTER[entry.name] = entry
    return entry


def all_adversaries() -> list[AdversaryEntry]:
    """Every registered opponent, in registration order."""
    return list(_ROSTER.values())


def get_adversary(name: str) -> AdversaryEntry:
    try:
        return _ROSTER[name]
    except KeyError:
        raise KeyError(f"unknown adversary {name!r}; registered: "
                       f"{sorted(_ROSTER)}") from None


for _entry in (
    AdversaryEntry("none", "fault-free baseline (latency only)",
                   "none", 0.0),
    AdversaryEntry("crash", "seeded crash plan over beta*n victims",
                   "crash", DEFAULT_BETA),
    AdversaryEntry("byz-wrong-bits",
                   "static Byzantine set flipping relayed bits",
                   "byzantine", DEFAULT_BETA, "wrong-bits"),
    AdversaryEntry("byz-equivocate",
                   "static Byzantine set telling each peer a "
                   "different story",
                   "byzantine", DEFAULT_BETA, "equivocate"),
    AdversaryEntry("byz-silent",
                   "static Byzantine set that never speaks",
                   "byzantine", DEFAULT_BETA, "silent"),
    AdversaryEntry("byz-selective-silence",
                   "static Byzantine set silent toward a targeted "
                   "subset",
                   "byzantine", DEFAULT_BETA, "selective-silence"),
    AdversaryEntry("dynamic-wrong-bits",
                   "mobile corruptions re-chosen per cycle, flipping "
                   "bits",
                   "dynamic", DEFAULT_BETA, "wrong-bits"),
    AdversaryEntry("dynamic-equivocate",
                   "mobile corruptions re-chosen per cycle, "
                   "equivocating",
                   "dynamic", DEFAULT_BETA, "equivocate"),
):
    register_adversary(_entry)
del _entry
