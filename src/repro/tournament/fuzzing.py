"""Seeded adversary fuzzing (formerly the top-level ``repro.fuzz``).

The upper-bound theorems are "for every adversary"; the concrete
adversaries in :mod:`repro.adversary` are hand-picked worst cases.
This module closes the gap from the other side: it *generates*
adversaries — random compositions of latency shapes, crash plans, and
Byzantine strategies — from a single seed, so property tests can hurl
thousands of distinct, reproducible adversarial environments at a
protocol.

A generated adversary is always *within the model*: finite delays,
at most ``floor(beta_cap * n)`` faults, cycle-respecting scheduling.
Anything a protocol fails under here is a genuine counterexample, and
the seed reproduces it.

The same discipline extends to the source side:
:func:`random_source_faults` draws a per-endpoint fault plan (fault
model x onset time x affected rate) for a ``k``-endpoint source set,
bounded by a fault budget ``f_cap`` — so the multi-source property
tests can fuzz the cross-validation protocols under thousands of
distinct faulty-source environments, each reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary import (
    BurstyDelay,
    ByzantineAdversary,
    ComposedAdversary,
    CrashAdversary,
    CrashAfterSends,
    CrashAtTime,
    EquivocateStrategy,
    NullAdversary,
    SelectiveSilenceStrategy,
    SilentStrategy,
    StaggeredStart,
    TargetedSlowdown,
    UniformRandomDelay,
    WrongBitsStrategy,
)
from repro.util.rng import SplittableRNG
from repro.util.validation import check_fraction, check_positive

_STRATEGIES = (WrongBitsStrategy, EquivocateStrategy, SilentStrategy,
               SelectiveSilenceStrategy)


@dataclass(frozen=True)
class FuzzPlan:
    """Human-readable summary of one generated adversary."""

    latency: str
    faults: str
    fault_count: int


@dataclass(frozen=True)
class SourceFaultPlan:
    """One generated per-endpoint source-fault assignment.

    ``specs`` holds grammar strings (``kind[:param][@onset]``), one per
    endpoint, accepted verbatim by
    :func:`repro.sim.sourceset.parse_faults`, the spec layer, and the
    CLI; ``faulty`` lists the non-honest endpoint IDs.
    """

    specs: tuple[str, ...]
    faulty: tuple[int, ...]

    @property
    def fault_count(self) -> int:
        return len(self.faulty)


def random_latency(rng: SplittableRNG, n: int):
    """Draw one latency adversary."""
    roll = rng.randrange(5)
    if roll == 0:
        return NullAdversary(), "synchronous"
    if roll == 1:
        return UniformRandomDelay(), "uniform"
    if roll == 2:
        return BurstyDelay(stall_fraction=rng.uniform(0.1, 0.6)), "bursty"
    if roll == 3:
        slow = set(rng.sample(range(n), max(1, n // 4)))
        return TargetedSlowdown(slow), f"slow{sorted(slow)}"
    return StaggeredStart(spread=rng.uniform(0.5, 5.0)), "staggered"


def random_crash_plan(rng: SplittableRNG, n: int, budget: int):
    """Draw an explicit crash plan of at most ``budget`` victims."""
    count = rng.randint(0, budget)
    victims = rng.sample(range(n), count)
    plan = {}
    for victim in victims:
        if rng.randint(0, 1):
            plan[victim] = CrashAtTime(rng.uniform(0.0, 15.0))
        else:
            plan[victim] = CrashAfterSends(rng.randrange(3 * n))
    return plan


#: Fault kinds :func:`random_source_faults` draws from, with the
#: parameter range each takes (None = parameterless).
_SOURCE_FAULT_KINDS = (
    ("wrong-bits", (0.1, 1.0)),
    ("stale", (0.01, 0.5)),
    ("withhold", None),
    ("slow", (2.0, 8.0)),
)


def random_source_faults(seed: int, *, k: int,
                         f_cap: int) -> SourceFaultPlan:
    """Generate one reproducible source-fault plan for ``k`` endpoints.

    At most ``f_cap`` endpoints are faulty; each faulty endpoint draws
    a fault model, a parameter in the model's plausible range, and —
    half the time — an onset time, so plans cover faults that begin
    mid-run.  Endpoints not drawn stay ``"honest"``.

    Args:
        seed: generator seed (same seed, same plan).
        k: endpoint count.
        f_cap: largest number of faulty endpoints the draw may use.

    Returns:
        A :class:`SourceFaultPlan` whose ``specs`` feed straight into
        ``source_faults=``.
    """
    check_positive("k", k)
    if not 0 <= f_cap < k:
        raise ValueError(f"f_cap must be in [0, k), got f_cap={f_cap}, "
                         f"k={k}")
    rng = SplittableRNG(seed).split("source-fuzz")
    count = rng.randint(0, f_cap)
    faulty = sorted(rng.sample(range(k), count))
    specs = ["honest"] * k
    for sid in faulty:
        kind, param_range = rng.choice(_SOURCE_FAULT_KINDS)
        spec = kind
        if param_range is not None:
            low, high = param_range
            spec = f"{kind}:{rng.uniform(low, high):.3f}"
        if rng.randint(0, 1):
            spec = f"{spec}@{rng.uniform(0.5, 10.0):.2f}"
        specs[sid] = spec
    return SourceFaultPlan(specs=tuple(specs), faulty=tuple(faulty))


def random_adversary(seed: int, *, n: int, fault_model: str,
                     beta_cap: float):
    """Generate one reproducible adversary.

    Args:
        seed: generator seed (same seed, same adversary).
        n: network size the adversary will face.
        fault_model: "crash" or "byzantine" (or "none").
        beta_cap: largest fault fraction the generator may use.

    Returns:
        ``(adversary, t, plan)`` where ``t`` is the fault budget the
        simulation should be configured with and ``plan`` summarizes
        the draw.
    """
    check_positive("n", n)
    check_fraction("beta_cap", beta_cap)
    rng = SplittableRNG(seed).split("fuzz")
    latency, latency_label = random_latency(rng.split("latency"), n)
    budget = int(beta_cap * n)
    if fault_model == "none" or budget == 0:
        return latency, 0, FuzzPlan(latency_label, "none", 0)

    fault_rng = rng.split("faults")
    if fault_model == "crash":
        plan = random_crash_plan(fault_rng, n, budget)
        if not plan:
            return latency, budget, FuzzPlan(latency_label, "none", 0)
        faults = CrashAdversary(crashes=plan)
        label = f"crash{sorted(plan)}"
        count = len(plan)
    elif fault_model == "byzantine":
        count = fault_rng.randint(0, budget)
        corrupted = set(fault_rng.sample(range(n), count))
        if not corrupted:
            return latency, budget, FuzzPlan(latency_label, "none", 0)
        strategy = fault_rng.choice(_STRATEGIES)
        faults = ByzantineAdversary(
            corrupted=corrupted,
            strategy_factory=lambda pid, s=strategy: s())
        label = f"{strategy.__name__}{sorted(corrupted)}"
    else:
        raise ValueError(f"unknown fault model {fault_model!r}")
    return (ComposedAdversary(faults=faults, latency=latency), budget,
            FuzzPlan(latency_label, label, count))
