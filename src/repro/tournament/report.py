"""League renderers: ranked text table, JSONL export, dashboard feed.

Three views over one :class:`~repro.tournament.league.LeagueResult`:

- :func:`render_league` — the terminal view: the adversary ranking
  (strongest first), the protocol ranking (most robust first), the
  full cell grid, and a violations appendix where every listed break
  carries the seed that replays it;
- :func:`league_jsonl_lines` — one JSON object per cell (sorted keys),
  stable enough to diff between league runs;
- :func:`league_dashboard_payload` — the same data shaped for the
  service dashboard's fetch-and-render loop (plain dict, ready for
  ``json.dumps``).
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.tournament.league import LeagueCell, LeagueResult


def _cell_row(cell: LeagueCell) -> dict:
    row = {
        "adversary": cell.adversary,
        "protocol": cell.protocol,
        "topology": cell.topology,
        "success_rate": cell.success_rate,
        "runs": cell.outcome.runs,
        "correct_runs": cell.outcome.correct_runs,
        "failed_runs": cell.outcome.failed_runs,
        "median_queries": cell.median_queries,
        "median_messages": cell.median_messages,
        "median_time": cell.median_time,
        "base_seed": cell.spec.base_seed,
    }
    if cell.violation is not None:
        row["violation"] = {"repeat": cell.violation.repeat,
                            "seed": cell.violation.seed}
    return row


def league_jsonl_lines(result: LeagueResult) -> Iterable[str]:
    """One sorted-key JSON line per cell, in league order."""
    for cell in result.cells:
        yield json.dumps(_cell_row(cell), sort_keys=True)


def league_dashboard_payload(result: LeagueResult) -> dict:
    """The dashboard-shaped summary (rankings + cells, one dict)."""
    return {
        "kind": "tournament",
        "adversary_ranking": [
            {"adversary": name, "mean_success_rate": rate}
            for name, rate in result.adversary_ranking()],
        "protocol_ranking": [
            {"protocol": name, "mean_success_rate": rate}
            for name, rate in result.protocol_ranking()],
        "cells": [_cell_row(cell) for cell in result.cells],
        "violations": len(result.violations()),
    }


def render_league(result: LeagueResult) -> str:
    """The full terminal report (see the module doc)."""
    lines = ["adversary league (strongest opponent first)",
             "-" * 46]
    for rank, (name, rate) in enumerate(result.adversary_ranking(), 1):
        lines.append(f"{rank:>2}. {name:<24} "
                     f"protocols score {rate:6.1%} against it")
    lines += ["", "protocol ranking (most robust first)", "-" * 46]
    for rank, (name, rate) in enumerate(result.protocol_ranking(), 1):
        lines.append(f"{rank:>2}. {name:<24} mean success {rate:6.1%}")
    lines += ["", "cells", "-" * 46]
    width_a = max(len("adversary"),
                  max((len(c.adversary) for c in result.cells),
                      default=0))
    width_p = max(len("protocol"),
                  max((len(c.protocol) for c in result.cells),
                      default=0))
    width_t = max(len("topology"),
                  max((len(c.topology) for c in result.cells),
                      default=0))
    lines.append(f"{'adversary'.ljust(width_a)} | "
                 f"{'protocol'.ljust(width_p)} | "
                 f"{'topology'.ljust(width_t)} | "
                 f"{'ok':>5} | {'med Q':>8} | {'med M':>8} | "
                 f"{'med T':>8}")
    for cell in result.cells:
        ok = f"{cell.outcome.correct_runs}/{cell.outcome.runs}"
        lines.append(f"{cell.adversary.ljust(width_a)} | "
                     f"{cell.protocol.ljust(width_p)} | "
                     f"{cell.topology.ljust(width_t)} | "
                     f"{ok:>5} | {cell.median_queries:>8.0f} | "
                     f"{cell.median_messages:>8.0f} | "
                     f"{cell.median_time:>8.2f}")
    violations = result.violations()
    if violations:
        lines += ["", f"violations ({len(violations)} cells; each "
                      f"replayable from its seed)", "-" * 46]
        for cell in violations:
            lines.append(
                f"{cell.adversary} beats {cell.protocol} on "
                f"{cell.topology}: repeat {cell.violation.repeat}, "
                f"seed {cell.violation.seed}")
    else:
        lines += ["", "violations: none"]
    return "\n".join(lines)
