"""The adversary-vs-protocol tournament league.

One league run crosses every chosen adversary against every chosen
protocol on every chosen topology — each cell an ordinary
:class:`~repro.experiments.ExperimentSpec` with its usual per-repeat
seeds — and executes all repeats of all cells through
:func:`repro.execution.run_tasks`: one shared pool, per-repeat retry,
graceful degradation, and (with a journal) checkpointed repeats, so an
interrupted league resumes instead of restarting.

Aggregation keeps the per-repeat records, not just the means: each
cell reports its success rate, the Q/T/M *medians* over completed
repeats, and — when any repeat produced a wrong download — a
*violation exemplar*: the repeat index and the exact per-repeat seed
that reproduces the failure (``spec.seed_for(repeat)``), so every
claimed break in the league table is replayable.

The league table ranks adversaries by the mean success rate protocols
achieve against them (lowest first — the strongest opponent tops the
table), and protocols by their mean success rate across all opponents
(highest first).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.execution import RetryPolicy, SweepJournal, run_tasks
from repro.execution.parallel import _spec_repeat_task
from repro.execution.retry import TaskFailure
from repro.experiments import (
    ExperimentOutcome,
    ExperimentSpec,
    aggregate_outcome,
)

from repro.tournament.roster import all_adversaries, get_adversary

#: Stock line-ups: peer-cooperation and robustness protocols that every
#: roster adversary can legally face at tournament sizes.
DEFAULT_PROTOCOLS = ("naive", "balanced", "crash-multi", "byz-committee")
DEFAULT_TOPOLOGIES = ("complete", "ring", "expander")


@dataclass(frozen=True)
class ViolationExemplar:
    """One replayable wrong-download witness inside a cell."""

    repeat: int
    seed: int


@dataclass(frozen=True)
class LeagueCell:
    """One (adversary x protocol x topology) match, fully aggregated."""

    adversary: str
    protocol: str
    topology: str
    spec: ExperimentSpec
    outcome: ExperimentOutcome
    median_queries: float
    median_messages: float
    median_time: float
    violation: Optional[ViolationExemplar] = None

    @property
    def success_rate(self) -> float:
        return self.outcome.success_rate


@dataclass(frozen=True)
class LeagueResult:
    """Every cell of one league run, plus the derived rankings."""

    cells: tuple = ()
    journal_stats: Optional[dict] = None

    def adversary_ranking(self) -> list[tuple[str, float]]:
        """(adversary, mean success rate against it), strongest first."""
        return self._ranking("adversary", reverse=False)

    def protocol_ranking(self) -> list[tuple[str, float]]:
        """(protocol, mean success rate), most robust first."""
        return self._ranking("protocol", reverse=True)

    def _ranking(self, attr: str, *, reverse: bool) -> list:
        rates: dict[str, list[float]] = {}
        for cell in self.cells:
            rates.setdefault(getattr(cell, attr), []).append(
                cell.success_rate)
        rows = [(name, sum(values) / len(values))
                for name, values in rates.items()]
        # Mean rate first, then name — fully deterministic ordering.
        rows.sort(key=lambda row: ((-row[1] if reverse else row[1]),
                                   row[0]))
        return rows

    def violations(self) -> list["LeagueCell"]:
        """Cells with at least one replayable wrong download."""
        return [cell for cell in self.cells
                if cell.violation is not None]


@dataclass(frozen=True)
class TournamentConfig:
    """Everything one league run needs (defaults = the smoke league)."""

    protocols: tuple = DEFAULT_PROTOCOLS
    adversaries: tuple = ()  #: empty = the whole registered roster
    topologies: tuple = DEFAULT_TOPOLOGIES
    n: int = 8
    ell: int = 256
    repeats: int = 3
    base_seed: int = 0
    workers: int = 1
    journal_path: Optional[str] = None
    policy: Optional[RetryPolicy] = field(default=None, compare=False)

    def roster(self) -> list:
        if self.adversaries:
            return [get_adversary(name) for name in self.adversaries]
        return all_adversaries()


def cell_spec(config: TournamentConfig, adversary, protocol: str,
              topology: str) -> ExperimentSpec:
    """The ordinary experiment spec behind one league cell."""
    return ExperimentSpec(
        protocol=protocol, n=config.n, ell=config.ell,
        fault_model=adversary.fault_model, beta=adversary.beta,
        strategy=adversary.strategy, repeats=config.repeats,
        base_seed=config.base_seed, topology=topology)


def run_tournament(config: TournamentConfig) -> LeagueResult:
    """Run the full league and aggregate it (see the module doc)."""
    roster = config.roster()
    if not roster:
        raise ValueError("the league needs at least one adversary")
    if not config.protocols:
        raise ValueError("the league needs at least one protocol")
    if not config.topologies:
        raise ValueError("the league needs at least one topology")
    keys = [(entry, protocol, topology)
            for entry in roster
            for protocol in config.protocols
            for topology in config.topologies]
    specs = [cell_spec(config, entry, protocol, topology)
             for entry, protocol, topology in keys]

    journal = (SweepJournal(config.journal_path)
               if config.journal_path else None)
    completed: dict[tuple[int, int], object] = {}
    if journal is not None:
        replayed = journal.replay()
        for index, spec in enumerate(specs):
            key = journal.key_for(spec)
            for repeat in range(spec.repeats):
                record = replayed.get((key, repeat))
                if record is not None:
                    completed[(index, repeat)] = record
    tasks = [(index, repeat) for index in range(len(specs))
             for repeat in range(specs[index].repeats)
             if (index, repeat) not in completed]

    def checkpoint(position: int, record) -> None:
        index, repeat = tasks[position]
        journal.record(specs[index], repeat, record)

    records = run_tasks(
        _spec_repeat_task,
        [(specs[index], repeat) for index, repeat in tasks],
        workers=config.workers,
        policy=config.policy,
        on_error="record",
        on_result=checkpoint if journal is not None else None,
        task_seeds=[specs[index].seed_for(repeat)
                    for index, repeat in tasks])
    for task, record in zip(tasks, records):
        completed[task] = record

    cells = []
    for index, ((entry, protocol, topology), spec) in enumerate(
            zip(keys, specs)):
        rows = [completed[(index, repeat)]
                for repeat in range(spec.repeats)]
        outcome = aggregate_outcome(spec, rows)
        measured = [row for row in rows
                    if not isinstance(row, TaskFailure)]
        violation = None
        for repeat, row in enumerate(rows):
            if not isinstance(row, TaskFailure) and not row.correct:
                violation = ViolationExemplar(
                    repeat=repeat, seed=spec.seed_for(repeat))
                break
        cells.append(LeagueCell(
            adversary=entry.name, protocol=protocol, topology=topology,
            spec=spec, outcome=outcome,
            median_queries=(statistics.median(r.queries
                                              for r in measured)
                            if measured else 0.0),
            median_messages=(statistics.median(r.messages
                                               for r in measured)
                             if measured else 0.0),
            median_time=(statistics.median(r.time for r in measured)
                         if measured else 0.0),
            violation=violation))
    stats = journal.stats.as_dict() if journal is not None else None
    return LeagueResult(cells=tuple(cells), journal_stats=stats)
