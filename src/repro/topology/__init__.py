"""First-class peer-to-peer connectivity: graphs and routing.

The DR model of the paper assumes the complete graph — every peer
reaches every other peer in one hop.  This package makes connectivity
a first-class, spec-level dimension: a :class:`Topology` describes who
is adjacent to whom, and a :class:`~repro.topology.routing.Router`
relays messages between non-adjacent pairs along seeded shortest
paths, charging latency (and message accounting) per hop.  That is the
setting of sparse-network Byzantine agreement (arxiv 2410.20865,
2506.04919) projected onto the download problem: Q is untouched (the
external source is reachable directly), while T and M degrade with the
graph's diameter and the relay traffic it forces.

Identity contract (load-bearing): ``"complete"`` is the default
everywhere and resolves to *no* topology object — the simulator's hot
path, every historical seed, and all golden traces are byte-identical
to the pre-topology engine.  Only non-complete topologies build
adjacency and a router.
"""

from repro.topology.graphs import (
    TOPOLOGY_NAMES,
    CompleteTopology,
    Topology,
    build_topology,
    resolve_topology,
)
from repro.topology.routing import Router, flood_layers

__all__ = [
    "TOPOLOGY_NAMES",
    "CompleteTopology",
    "Router",
    "Topology",
    "build_topology",
    "flood_layers",
    "resolve_topology",
]
