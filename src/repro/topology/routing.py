"""Seeded shortest-path routing and flooding over a topology.

The :class:`Router` answers "how does a message from ``src`` reach
``dst``" with a concrete hop path.  Paths are always shortest (hop
count = BFS distance), and ties between equally-short paths are broken
by a seeded shuffle of each BFS frontier — different run seeds spread
relay load across different shortest-path trees, while one seed always
reproduces the same routes (cache/journal replays and golden traces
depend on that).

Routes are computed from per-destination BFS trees ("which neighbor
moves me one hop closer to ``dst``"), built lazily and cached: a run
that only ever broadcasts touches every destination once and then
routes from the table.
"""

from __future__ import annotations

from repro.topology.graphs import Topology
from repro.util.rng import SplittableRNG, derive_seed


class Router:
    """Next-hop routing tables for one topology and one seed."""

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.topology = topology
        self.seed = seed
        #: dst -> per-source next hop toward dst (-1 at dst itself).
        self._next_hop: dict[int, list[int]] = {}

    def _table(self, dst: int) -> list[int]:
        table = self._next_hop.get(dst)
        if table is not None:
            return table
        topology = self.topology
        table = [-2] * topology.n  # -2 = unreached
        table[dst] = -1
        rng = SplittableRNG(derive_seed(self.seed, f"route-{dst}"))
        frontier = [dst]
        while frontier:
            next_frontier = []
            for node in frontier:
                adjacent = list(topology.neighbors(node))
                rng.shuffle(adjacent)
                for other in adjacent:
                    if table[other] == -2:
                        # BFS from dst: the tree edge other -> node is
                        # other's first hop *toward* dst.
                        table[other] = node
                        next_frontier.append(other)
            frontier = next_frontier
        if any(entry == -2 for entry in table):
            unreachable = [pid for pid, entry in enumerate(table)
                           if entry == -2]
            raise ValueError(
                f"topology {topology.name!r} is disconnected: "
                f"{unreachable} cannot reach {dst}")
        self._next_hop[dst] = table
        return table

    def next_hop(self, src: int, dst: int) -> int:
        """The neighbor of ``src`` one hop closer to ``dst``."""
        if src == dst:
            raise ValueError(f"no hop from {src} to itself")
        return self._table(dst)[src]

    def distance(self, src: int, dst: int) -> int:
        """Hop count of the shortest path from ``src`` to ``dst``."""
        return len(self.path(src, dst)) - 1

    def path(self, src: int, dst: int) -> list[int]:
        """The full hop path ``[src, ..., dst]`` (length >= 1)."""
        if src == dst:
            return [src]
        table = self._table(dst)
        path = [src]
        node = src
        while node != dst:
            node = table[node]
            path.append(node)
        return path


def flood_layers(topology: Topology, origin: int) -> list[list[int]]:
    """BFS layers of a flood from ``origin``: ``layers[h]`` is the set
    of peers first reached after ``h`` hops (``layers[0] == [origin]``).

    This is the reachability schedule the relay layer and the sync
    engine's delayed delivery both refine; the property suite asserts
    every peer appears within ``topology.diameter`` hops.
    """
    seen = {origin}
    layers = [[origin]]
    frontier = [origin]
    while frontier:
        next_frontier = []
        for node in frontier:
            for other in topology.neighbors(node):
                if other not in seen:
                    seen.add(other)
                    next_frontier.append(other)
        if next_frontier:
            layers.append(sorted(next_frontier))
        frontier = next_frontier
    return layers
