"""Seeded topology constructors and the ``Topology`` value type.

Every constructor is a pure function of ``(name, n, seed)``: the same
spec string always yields the same graph, so experiment repeats and
cache/journal replays see identical connectivity.  All constructed
topologies are connected — a disconnected download network makes the
problem unsolvable for the cut-off peers, so construction fails loudly
instead of producing an impossible experiment.

The spec grammar is ``name`` or ``name:param``:

- ``complete`` — every pair adjacent (the paper's model; the default);
- ``ring`` — cycle ``0-1-...-(n-1)-0``; degree 2, diameter ``n // 2``;
- ``star`` — hub ``0`` adjacent to every leaf; diameter 2;
- ``random-dregular[:d]`` — seeded pairing-model random ``d``-regular
  graph (default ``d=4``), resampled until simple and connected;
- ``expander`` — the deterministic power-of-two circulant: ``i`` is
  adjacent to ``i ± 2^k (mod n)`` for every ``2^k < n`` — logarithmic
  degree and diameter, the cheap stand-in for a spectral expander.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.util.rng import SplittableRNG, derive_seed
from repro.util.validation import check_positive

#: Spec names accepted by :func:`build_topology` (the parameterized
#: form ``random-dregular:d`` shares its base name's entry).
TOPOLOGY_NAMES = ("complete", "ring", "star", "random-dregular", "expander")

#: Default degree for ``random-dregular`` when the spec omits ``:d``.
DEFAULT_REGULAR_DEGREE = 4

#: Resampling budget for the pairing model before giving up.  Small
#: dense cases are the worst: n=5, d=4 admits only K5, which ~1.2% of
#: pairings hit — thousands of (cheap, early-exit) attempts make
#: failure astronomically unlikely for every feasible (n, d).
_PAIRING_ATTEMPTS = 5000


class Topology:
    """An undirected connected graph over peers ``0 .. n-1``.

    Adjacency is stored as sorted tuples, so iteration order — and
    therefore every seeded routing decision built on top — is
    deterministic.
    """

    def __init__(self, n: int, name: str,
                 neighbor_sets: Sequence[Sequence[int]]) -> None:
        check_positive("n", n)
        self.n = n
        self.name = name
        self._neighbors = tuple(tuple(sorted(set(adjacent)))
                                for adjacent in neighbor_sets)
        if len(self._neighbors) != n:
            raise ValueError(
                f"topology {name!r} has {len(self._neighbors)} adjacency "
                f"rows for n={n}")
        for pid, adjacent in enumerate(self._neighbors):
            for other in adjacent:
                if other == pid:
                    raise ValueError(f"topology {name!r}: self-loop at {pid}")
                if not 0 <= other < n:
                    raise ValueError(
                        f"topology {name!r}: peer {pid} adjacent to "
                        f"out-of-range {other}")
                if pid not in self._neighbors[other]:
                    raise ValueError(
                        f"topology {name!r}: edge {pid}-{other} is not "
                        f"symmetric")
        self._diameter: Optional[int] = None

    # -- structure ---------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """True when every pair is adjacent (one-hop everywhere)."""
        return all(len(adjacent) == self.n - 1
                   for adjacent in self._neighbors)

    def neighbors(self, pid: int) -> tuple[int, ...]:
        """The peers adjacent to ``pid``, in ascending order."""
        return self._neighbors[pid]

    @property
    def degree(self) -> int:
        """The maximum degree over all peers."""
        return max(len(adjacent) for adjacent in self._neighbors)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Every undirected edge once, as ``(u, v)`` with ``u < v``."""
        for pid, adjacent in enumerate(self._neighbors):
            for other in adjacent:
                if pid < other:
                    yield (pid, other)

    # -- metrics -----------------------------------------------------------

    def _bfs_distances(self, origin: int) -> list[int]:
        """Hop distances from ``origin`` (-1 for unreachable peers)."""
        distances = [-1] * self.n
        distances[origin] = 0
        frontier = [origin]
        while frontier:
            next_frontier = []
            for node in frontier:
                for other in self._neighbors[node]:
                    if distances[other] < 0:
                        distances[other] = distances[node] + 1
                        next_frontier.append(other)
            frontier = next_frontier
        return distances

    def is_connected(self) -> bool:
        """True when every peer can reach every other peer."""
        return self.n == 1 or min(self._bfs_distances(0)) >= 0

    @property
    def diameter(self) -> int:
        """The maximum over all pairs of the shortest hop distance."""
        if self._diameter is None:
            worst = 0
            for origin in range(self.n):
                worst = max(worst, max(self._bfs_distances(origin)))
            self._diameter = worst
        return self._diameter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, n={self.n})"


class CompleteTopology(Topology):
    """The paper's complete graph, with O(1) virtual adjacency.

    Exists so property tests and validators can treat ``complete``
    uniformly; the simulator never routes through it — a complete
    topology resolves to ``None`` (see :func:`resolve_topology`) and
    the pre-topology code path.
    """

    def __init__(self, n: int) -> None:
        check_positive("n", n)
        self.n = n
        self.name = "complete"
        self._diameter = 0 if n == 1 else 1

    @property
    def is_complete(self) -> bool:
        return True

    def neighbors(self, pid: int) -> tuple[int, ...]:
        if not 0 <= pid < self.n:
            raise IndexError(pid)
        return tuple(other for other in range(self.n) if other != pid)

    @property
    def degree(self) -> int:
        return self.n - 1

    def edges(self) -> Iterator[tuple[int, int]]:
        for pid in range(self.n):
            for other in range(pid + 1, self.n):
                yield (pid, other)

    def _bfs_distances(self, origin: int) -> list[int]:
        return [0 if pid == origin else 1 for pid in range(self.n)]

    def is_connected(self) -> bool:
        return True

    @property
    def diameter(self) -> int:
        return self._diameter


# -- constructors -------------------------------------------------------------


def _ring(n: int) -> Topology:
    if n < 3:
        raise ValueError(f"ring topology needs n >= 3, got n={n}")
    return Topology(n, "ring", [
        ((pid - 1) % n, (pid + 1) % n) for pid in range(n)])


def _star(n: int) -> Topology:
    if n < 2:
        raise ValueError(f"star topology needs n >= 2, got n={n}")
    rows = [tuple(range(1, n))]
    rows.extend((0,) for _ in range(1, n))
    return Topology(n, "star", rows)


def _expander(n: int) -> Topology:
    if n < 3:
        raise ValueError(f"expander topology needs n >= 3, got n={n}")
    offsets = []
    step = 1
    while step < n:
        offsets.append(step)
        step *= 2
    rows = []
    for pid in range(n):
        adjacent = set()
        for offset in offsets:
            adjacent.add((pid + offset) % n)
            adjacent.add((pid - offset) % n)
        adjacent.discard(pid)
        rows.append(sorted(adjacent))
    return Topology(n, "expander", rows)


def _random_dregular(n: int, d: int, seed: int) -> Topology:
    """Pairing-model random ``d``-regular graph, seeded and simple.

    Resamples until the pairing produced no self-loops or parallel
    edges *and* the graph is connected; for ``d >= 3`` both hold with
    constant probability, so the attempt budget is generous headroom.
    """
    if d < 2:
        raise ValueError(f"random-dregular needs degree >= 2, got d={d}")
    if d >= n:
        raise ValueError(f"random-dregular needs d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError(
            f"random-dregular needs n*d even, got n={n}, d={d}")
    rng = SplittableRNG(seed).split("pairing")
    for _ in range(_PAIRING_ATTEMPTS):
        stubs = [pid for pid in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        rows: list[set[int]] = [set() for _ in range(n)]
        simple = True
        for index in range(0, len(stubs), 2):
            u, v = stubs[index], stubs[index + 1]
            if u == v or v in rows[u]:
                simple = False
                break
            rows[u].add(v)
            rows[v].add(u)
        if not simple:
            continue
        topology = Topology(n, f"random-dregular:{d}", rows)
        if topology.is_connected():
            return topology
    raise ValueError(
        f"random-dregular: no simple connected graph found for n={n}, "
        f"d={d} after {_PAIRING_ATTEMPTS} pairings")


# -- the spec grammar ----------------------------------------------------------


def build_topology(spec: str, n: int, seed: int = 0) -> Topology:
    """Build the topology named by ``spec`` over ``n`` peers.

    ``seed`` feeds the seeded constructors (only ``random-dregular``
    draws randomness); deterministic constructors ignore it.  Raises
    ``ValueError`` on an unknown name, a malformed parameter, or an
    ``(n, parameter)`` combination with no valid graph.
    """
    name, _, parameter = str(spec).partition(":")
    name = name.strip()
    if parameter and name != "random-dregular":
        raise ValueError(
            f"topology {name!r} takes no parameter (got {spec!r})")
    if name == "complete":
        return CompleteTopology(n)
    if name == "ring":
        return _ring(n)
    if name == "star":
        return _star(n)
    if name == "expander":
        return _expander(n)
    if name == "random-dregular":
        degree = DEFAULT_REGULAR_DEGREE
        if parameter:
            try:
                degree = int(parameter)
            except ValueError:
                raise ValueError(
                    f"random-dregular degree must be an integer, got "
                    f"{parameter!r}")
        return _random_dregular(n, degree, seed)
    raise ValueError(
        f"unknown topology {name!r}; expected one of "
        f"{', '.join(TOPOLOGY_NAMES)}")


def resolve_topology(topology: Union[str, Topology, None], n: int,
                     seed: int) -> Optional[Topology]:
    """Resolve a run's ``topology=`` argument to an object, or ``None``.

    ``None``/``"complete"`` (and any already-complete instance) resolve
    to ``None`` — the byte-identical pre-topology engine.  Strings go
    through :func:`build_topology` with a construction seed derived
    from the run seed under the stable ``"topology"`` label, so the
    graph is a pure function of the run's identity.
    """
    if topology is None:
        return None
    if isinstance(topology, str):
        if topology.strip() == "complete":
            return None
        topology = build_topology(topology, n, derive_seed(seed, "topology"))
    if topology.n != n:
        raise ValueError(
            f"topology is over {topology.n} peers but the run has n={n}")
    return None if topology.is_complete else topology
