"""dr-download: the Data Retrieval model's Download problem, reproduced.

A full implementation of *"Distributed Download from an External Data
Source"* (the PODC 2025 brief announcement and its asynchronous full
version): the DR network model as a deterministic event simulation, all
crash-fault and Byzantine Download protocols, the Byzantine-majority
lower-bound constructions as executable adversaries, and the
blockchain-oracle application.

Quickstart::

    from repro import run_download
    from repro.protocols import CrashMultiDownloadPeer
    from repro.adversary import CrashAdversary, ComposedAdversary, UniformRandomDelay

    result = run_download(
        n=16, ell=4096, seed=7,
        peer_factory=CrashMultiDownloadPeer.factory(),
        adversary=ComposedAdversary(
            faults=CrashAdversary(crash_fraction=0.5),
            latency=UniformRandomDelay()))
    assert result.download_correct
    print(result.report)   # Q / M / T complexity of the run

Subpackages: :mod:`repro.sim` (the DR substrate), :mod:`repro.adversary`
(failure/delay strategies), :mod:`repro.core` (assignments, segments,
decision trees, bounds), :mod:`repro.protocols` (the paper's
protocols), :mod:`repro.lowerbounds` (Theorems 3.1/3.2 as code), and
:mod:`repro.oracle` (the Section 4 application).
"""

from repro.sim.runner import RunResult, Simulation, run_download
from repro.util.bitarrays import BitArray

__version__ = "1.0.0"

__all__ = ["BitArray", "RunResult", "Simulation", "run_download",
           "__version__"]
