"""Command-line interface: run DR-model downloads from a shell.

Usage (installed as ``python -m repro``)::

    python -m repro list
    python -m repro run --protocol crash-multi --n 16 --ell 4096 \
        --fault-model crash --beta 0.5 --seed 7
    python -m repro run --protocol byz-committee --n 9 --ell 270 \
        --fault-model byzantine --beta 0.33 --strategy equivocate
    python -m repro lower-bound --n 10 --ell 200 --claimed-t 2 --repeats 3
    python -m repro sweep --protocol crash-multi --fault-model crash \
        --beta 0.5 --axis beta --values 0.1,0.3,0.5,0.7 \
        --workers 4 --markdown-out report.md
    python -m repro sweep --protocol byz-committee --backend sync \
        --workers 4 --resume --telemetry out.jsonl
    python -m repro run --protocol crash-multi --fault-model crash \
        --beta 0.5 --telemetry run.jsonl
    python -m repro trace summary run.jsonl
    python -m repro serve --port 8321 --pool 4
    python -m repro submit --protocol crash-multi --fault-model crash \
        --beta 0.5 --axis beta --values 0.1,0.3,0.5 --wait
    python -m repro status && python -m repro result <job-id>

``--telemetry out.jsonl`` records every schema event the run (or
sweep) emits — the query timeline, adversary decisions, scheduler
wakes — to a JSONL export (see docs/OBSERVABILITY.md); the ``trace``
subcommand family (``summary``/``timeline``/``diff``/``flame``)
inspects such exports.

Sweeps run through the parallel experiment engine: ``--workers N``
fans repeats and points over N processes (results are identical at any
worker count), previously computed points are reused from the on-disk
result cache (disable with ``--no-cache``; relocate with
``--cache-dir`` or ``$REPRO_CACHE_DIR``).  The engine is
fault-tolerant: every repeat runs under a retry policy
(``--max-retries``, ``--task-timeout``), failed repeats degrade into
the report instead of aborting the sweep (``--strict`` restores
fail-fast), and ``--resume`` checkpoints completed repeats to a
journal so an interrupted sweep picks up where it stopped.

``serve`` runs the same engine as a long-lived job server (HTTP API,
SSE progress, live dashboard, content-addressed dedup, journal-backed
restart); ``submit``/``status``/``result``/``cancel`` are its clients,
addressed via ``--server`` or ``$REPRO_SERVER`` — the operator guide
is docs/SERVICE.md.

The CLI is a thin veneer over the library; every option maps one-to-one
onto a constructor argument documented in the API.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.adversary import (
    ByzantineAdversary,
    ComposedAdversary,
    CrashAdversary,
    EquivocateStrategy,
    NullAdversary,
    SelectiveSilenceStrategy,
    SilentStrategy,
    UniformRandomDelay,
    WrongBitsStrategy,
)
from repro.adversary.dynamic import DynamicByzantineAdversary
from repro.protocols import all_protocols, get
from repro.sim import run_download

_STRATEGIES = {
    "wrong-bits": WrongBitsStrategy,
    "equivocate": EquivocateStrategy,
    "silent": SilentStrategy,
    "selective-silence": SelectiveSilenceStrategy,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Download in the DR model — simulator CLI")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available protocols")

    run_parser = subparsers.add_parser("run", help="run one download")
    run_parser.add_argument("--protocol", required=True,
                            help="protocol name (see `repro list`)")
    run_parser.add_argument("--n", type=int, default=16,
                            help="number of peers")
    run_parser.add_argument("--ell", type=int, default=4096,
                            help="input length in bits")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--fault-model",
                            choices=["none", "crash", "byzantine",
                                     "dynamic"],
                            default="none")
    run_parser.add_argument("--beta", type=float, default=0.0,
                            help="fault fraction")
    run_parser.add_argument("--strategy", choices=sorted(_STRATEGIES),
                            default="wrong-bits",
                            help="Byzantine corruption strategy")
    run_parser.add_argument("--synchronous", action="store_true",
                            help="unit latencies instead of the "
                                 "asynchronous adversary (synchrony "
                                 "*emulated* inside the async kernel; "
                                 "for round-native lockstep execution "
                                 "use `sweep --backend sync`)")
    run_parser.add_argument("--block-size", type=int, default=None,
                            help="committee protocol block size")
    run_parser.add_argument("--segments", type=int, default=None,
                            help="randomized protocols: segment count")
    run_parser.add_argument("--tau", type=int, default=None,
                            help="randomized protocols: frequency "
                                 "threshold")
    _add_source_arguments(run_parser)
    _add_topology_argument(run_parser)
    run_parser.add_argument("--profile", action="store_true",
                            help="profile the run with cProfile and "
                                 "print the pstats top table to stderr "
                                 "(also: REPRO_PROFILE=1)")
    run_parser.add_argument("--scale", nargs="?", const="auto",
                            default=None, metavar="BACKEND",
                            help="vectorized scale path for six-figure "
                                 "n: bare --scale picks numpy when "
                                 "installed (pip install repro[scale]) "
                                 "and the pure-python fallback "
                                 "otherwise; --scale numpy|python "
                                 "forces a backend (also: "
                                 "REPRO_SCALE=1)")
    run_parser.add_argument("--telemetry", metavar="PATH", default=None,
                            help="record the run's telemetry events to "
                                 "this JSONL file (inspect with "
                                 "`repro trace`)")

    lb_parser = subparsers.add_parser(
        "lower-bound",
        help="run the Theorem 3.1 witness adversary against the "
             "committee protocol (through the 'lowerbound' execution "
             "backend)")
    lb_parser.add_argument("--n", type=int, default=10)
    lb_parser.add_argument("--ell", type=int, default=200)
    lb_parser.add_argument("--seed", type=int, default=0)
    lb_parser.add_argument("--claimed-t", type=int, default=2,
                           help="fault budget the victim protocol is "
                                "told (the construction corrupts a "
                                "majority regardless)")
    lb_parser.add_argument("--block-size", type=int, default=None,
                           help="committee protocol block size "
                                "(default: max(1, ell // 20))")
    lb_parser.add_argument("--repeats", type=int, default=1,
                           help="independent attack executions; the "
                                "fooled-rate aggregates over them")
    lb_parser.add_argument("--workers", type=int, default=1,
                           help="processes to fan repeats over "
                                "(1 = in-process serial)")
    lb_parser.add_argument("--telemetry", metavar="PATH", default=None,
                           help="record the attack executions' telemetry "
                                "events to this JSONL file")

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep one experiment axis and print/persist a "
                      "report")
    sweep_parser.add_argument("--protocol", required=True)
    sweep_parser.add_argument("--n", type=int, default=16)
    sweep_parser.add_argument("--ell", type=int, default=4096)
    sweep_parser.add_argument("--fault-model",
                              choices=["none", "crash", "byzantine",
                                       "dynamic"],
                              default="none")
    sweep_parser.add_argument("--beta", type=float, default=0.0)
    sweep_parser.add_argument("--strategy",
                              choices=sorted(_STRATEGIES) +
                              ["deterministic", "randomized"],
                              default=None,
                              help="Byzantine corruption strategy "
                                   "(sim/sync backends; default "
                                   "wrong-bits) or which construction "
                                   "to run (lowerbound backend; default "
                                   "deterministic)")
    sweep_parser.add_argument("--backend",
                              choices=["sim", "sync", "lowerbound",
                                       "net"],
                              default="sim",
                              help="execution engine: 'sim' is the "
                                   "asynchronous discrete-event "
                                   "simulator; 'sync' is the "
                                   "round-native lockstep engine whose "
                                   "time measure is an exact round "
                                   "count (this is NOT `run "
                                   "--synchronous`, which merely pins "
                                   "unit latencies inside the async "
                                   "kernel); 'lowerbound' runs the "
                                   "Theorem 3.1/3.2 adversarial "
                                   "constructions; 'net' runs real "
                                   "peers over Unix sockets behind the "
                                   "chaos proxy (see --proxy-faults; "
                                   "time is wall clock)")
    sweep_parser.add_argument("--repeats", type=int, default=2)
    sweep_parser.add_argument("--seed", type=int, default=0)
    _add_source_arguments(sweep_parser)
    _add_topology_argument(sweep_parser)
    sweep_parser.add_argument("--axis", default=None,
                              help="spec field to sweep (e.g. beta, n, "
                                   "ell); omit together with --values "
                                   "to run the single configured point")
    sweep_parser.add_argument("--values", default=None,
                              help="comma-separated axis values")
    sweep_parser.add_argument("--json-out", default=None,
                              help="persist outcomes to this JSON file")
    sweep_parser.add_argument("--markdown-out", default=None,
                              help="write a markdown report here")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="processes to fan repeats/points "
                                   "over (1 = in-process serial)")
    sweep_parser.add_argument("--scale", nargs="?", const="auto",
                              default=None, metavar="BACKEND",
                              help="vectorized scale path (see "
                                   "`repro run --scale`); exported as "
                                   "REPRO_SCALE so pool workers "
                                   "inherit it")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="recompute every point instead of "
                                   "reusing the on-disk result cache")
    sweep_parser.add_argument("--cache-dir", default=None,
                              help="result cache directory (default: "
                                   "$REPRO_CACHE_DIR or ~/.cache/repro)")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="checkpoint completed repeats to a "
                                   "journal next to the result cache and "
                                   "replay it on restart, so an "
                                   "interrupted sweep resumes instead of "
                                   "restarting")
    sweep_parser.add_argument("--max-retries", type=int, default=2,
                              help="retries per repeat after the first "
                                   "attempt (default 2; 0 disables)")
    sweep_parser.add_argument("--task-timeout", type=float, default=None,
                              help="per-repeat wall-clock budget in "
                                   "seconds (stalled repeats are killed "
                                   "and retried)")
    sweep_parser.add_argument("--strict", action="store_true",
                              help="abort on the first repeat that fails "
                                   "every retry instead of reporting "
                                   "partial results")
    sweep_parser.add_argument("--profile", action="store_true",
                              help="profile the sweep with cProfile and "
                                   "print the pstats top table to stderr "
                                   "(in-process work only — profile with "
                                   "--workers 1; also: REPRO_PROFILE=1)")
    sweep_parser.add_argument("--telemetry", metavar="PATH", default=None,
                              help="record the sweep's telemetry events "
                                   "(task outcomes, cache hits, and — "
                                   "with --workers 1 — every in-process "
                                   "run's events) to this JSONL file")
    sweep_parser.add_argument("--proxy-faults", default=None,
                              help="backend=net only: comma-separated "
                                   "chaos-proxy fault specs, "
                                   "kind[:param] — drop[:rate], "
                                   "dup[:rate], delay[:seconds], "
                                   "reorder[:rate], disconnect[:rate]. "
                                   "Seeded per run; shakes the wire "
                                   "without changing the experiment's "
                                   "seeds")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="paint a live progress line to stderr "
                                   "(done/failed/retried, cache hits, "
                                   "ETA)")

    tournament_parser = subparsers.add_parser(
        "tournament",
        help="cross every registered adversary against every protocol "
             "on every topology and print the ranked league table")
    tournament_parser.add_argument("--protocols", default=None,
                                   help="comma-separated protocol "
                                        "line-up (default: naive,"
                                        "balanced,crash-multi,"
                                        "byz-committee)")
    tournament_parser.add_argument("--adversaries", default=None,
                                   help="comma-separated roster subset "
                                        "(default: every registered "
                                        "adversary)")
    tournament_parser.add_argument("--topologies", default=None,
                                   help="comma-separated topology specs "
                                        "(default: complete,ring,"
                                        "expander)")
    tournament_parser.add_argument("--n", type=int, default=8)
    tournament_parser.add_argument("--ell", type=int, default=256)
    tournament_parser.add_argument("--repeats", type=int, default=3)
    tournament_parser.add_argument("--seed", type=int, default=0)
    tournament_parser.add_argument("--workers", type=int, default=1,
                                   help="processes to fan the league's "
                                        "repeats over")
    tournament_parser.add_argument("--resume", action="store_true",
                                   help="checkpoint completed repeats "
                                        "to a journal next to the "
                                        "result cache and replay it on "
                                        "restart")
    tournament_parser.add_argument("--journal", default=None,
                                   help="explicit journal path "
                                        "(implies --resume)")
    tournament_parser.add_argument("--max-retries", type=int, default=2,
                                   help="retries per repeat after the "
                                        "first attempt")
    tournament_parser.add_argument("--task-timeout", type=float,
                                   default=None,
                                   help="per-repeat wall-clock budget "
                                        "in seconds")
    tournament_parser.add_argument("--jsonl-out", default=None,
                                   help="write one JSON line per league "
                                        "cell here")
    tournament_parser.add_argument("--json-out", default=None,
                                   help="write the dashboard-shaped "
                                        "league summary (rankings + "
                                        "cells) here")
    tournament_parser.add_argument("--fail-on-violation",
                                   action="store_true",
                                   help="exit 1 when any cell captured "
                                        "a wrong download (default: "
                                        "violations are reported "
                                        "findings, exit 0)")

    serve_parser = subparsers.add_parser(
        "serve", help="run the download-as-a-service job API "
                      "(docs/SERVICE.md)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8321,
                              help="listen port; 0 picks a free one "
                                   "(pair with --port-file so scripts "
                                   "can find it)")
    serve_parser.add_argument("--port-file", default=None,
                              help="write the bound port here once "
                                   "listening")
    serve_parser.add_argument("--data-dir", default=None,
                              help="job store root (default: "
                                   "$REPRO_SERVICE_DIR or "
                                   "~/.cache/repro/service); jobs in it "
                                   "resume on restart")
    serve_parser.add_argument("--pool", type=int, default=2,
                              help="workers in the one shared pool all "
                                   "jobs multiplex over")
    serve_parser.add_argument("--pool-mode", choices=["thread", "process"],
                              default="thread",
                              help="'process' buys CPU parallelism at "
                                   "fork cost")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="disable the content-addressed result "
                                   "cache (dedup of in-flight jobs still "
                                   "applies)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="share a result cache outside the "
                                   "data dir (e.g. with `repro sweep`)")

    submit_parser = subparsers.add_parser(
        "submit", help="submit a job to a running `repro serve`")
    submit_parser.add_argument("--protocol", required=True)
    submit_parser.add_argument("--n", type=int, default=16)
    submit_parser.add_argument("--ell", type=int, default=4096)
    submit_parser.add_argument("--fault-model",
                               choices=["none", "crash", "byzantine",
                                        "dynamic"],
                               default="none")
    submit_parser.add_argument("--beta", type=float, default=0.0)
    submit_parser.add_argument("--strategy",
                               choices=sorted(_STRATEGIES), default=None)
    submit_parser.add_argument("--backend",
                               choices=["sim", "sync", "net"],
                               default="sim")
    submit_parser.add_argument("--repeats", type=int, default=2)
    submit_parser.add_argument("--seed", type=int, default=0)
    _add_source_arguments(submit_parser)
    _add_topology_argument(submit_parser)
    submit_parser.add_argument("--proxy-faults", default=None,
                               help="backend=net chaos-proxy fault specs "
                                    "(see `repro sweep --proxy-faults`)")
    submit_parser.add_argument("--axis", default=None,
                               help="spec field to sweep server-side")
    submit_parser.add_argument("--values", default=None,
                               help="comma-separated axis values")
    submit_parser.add_argument("--priority", type=int, default=10,
                               help="lower runs first; equal priorities "
                                    "are served round-robin")
    submit_parser.add_argument("--client", default=None,
                               help="submitter label (display only; "
                                    "default $USER)")
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job finishes and "
                                    "print its result table")
    submit_parser.add_argument("--follow", action="store_true",
                               help="stream the job's SSE events while "
                                    "waiting (implies --wait)")

    status_parser = subparsers.add_parser(
        "status", help="show one job (or, with no id, every job)")
    status_parser.add_argument("job", nargs="?", default=None)

    result_parser = subparsers.add_parser(
        "result", help="fetch a finished job's outcomes")
    result_parser.add_argument("job")
    result_parser.add_argument("--json-out", default=None,
                               help="persist outcomes to this JSON file "
                                    "(same format as `sweep --json-out`)")

    cancel_parser = subparsers.add_parser(
        "cancel", help="cancel a pending/running job (idempotent)")
    cancel_parser.add_argument("job")

    for client_parser in (submit_parser, status_parser, result_parser,
                          cancel_parser):
        client_parser.add_argument(
            "--server", default=None,
            help="server base URL (default: $REPRO_SERVER or "
                 "http://127.0.0.1:8321)")

    from repro.obs.trace_cli import attach_trace_parser
    attach_trace_parser(subparsers)
    return parser


def _add_source_arguments(parser) -> None:
    """Multi-source knobs, shared by `run` and `sweep`."""
    parser.add_argument("--sources", type=int, default=1,
                        help="number of external source endpoints "
                             "(default 1: the paper's trusted source)")
    parser.add_argument("--source-faults", default=None,
                        help="comma-separated per-endpoint fault specs, "
                             "kind[:param][@onset] — honest, "
                             "wrong-bits[:rate], stale[:rate], "
                             "withhold, slow[:factor]; unlisted "
                             "endpoints are honest")
    parser.add_argument("--q", type=int, default=None,
                        help="cross-validate: sources queried per "
                             "digit (default: all of them)")
    parser.add_argument("--decode", choices=["majority", "threshold"],
                        default=None,
                        help="cross-validate: vote decode rule")
    parser.add_argument("--threshold", type=int, default=None,
                        help="cross-validate: vote count for "
                             "--decode threshold")
    parser.add_argument("--source-f", type=int, default=None,
                        help="cross-validate-escalate: source-fault "
                             "budget f (queries f+1, escalates to "
                             "2f+1)")


def _add_topology_argument(parser) -> None:
    parser.add_argument("--topology", default="complete",
                        help="peer-to-peer connectivity: complete "
                             "(the paper's model; default), ring, star, "
                             "expander, or random-dregular[:d]. Sparse "
                             "graphs route peer messages hop-by-hop "
                             "(queries stay direct, so Q is unchanged); "
                             "sweepable via --axis topology")


def _source_faults_for(args) -> tuple:
    if not getattr(args, "source_faults", None):
        return ()
    return tuple(part.strip() for part in args.source_faults.split(",")
                 if part.strip())


def _proxy_faults_for(args) -> tuple:
    if not getattr(args, "proxy_faults", None):
        return ()
    return tuple(part.strip() for part in args.proxy_faults.split(",")
                 if part.strip())


def _source_params_for(args) -> dict:
    params = {}
    if getattr(args, "q", None) is not None:
        params["q"] = args.q
    if getattr(args, "decode", None) is not None:
        params["decode"] = args.decode
    if getattr(args, "threshold", None) is not None:
        params["threshold"] = args.threshold
    if getattr(args, "source_f", None) is not None:
        params["f"] = args.source_f
    return params


def _adversary_for(args):
    latency = NullAdversary() if args.synchronous else UniformRandomDelay()
    if args.fault_model == "none" or args.beta <= 0:
        return latency, 0
    t = int(args.beta * args.n)
    if args.fault_model == "crash":
        faults = CrashAdversary(crash_fraction=args.beta)
    elif args.fault_model == "byzantine":
        strategy = _STRATEGIES[args.strategy]
        faults = ByzantineAdversary(fraction=args.beta,
                                    strategy_factory=lambda pid: strategy())
    else:
        strategy = _STRATEGIES[args.strategy]
        faults = DynamicByzantineAdversary(
            fraction=args.beta, strategy_factory=lambda pid: strategy())
    return ComposedAdversary(faults=faults, latency=latency), t


def _factory_for(args):
    entry = get(args.protocol)
    params = {}
    if args.block_size is not None:
        params["block_size"] = args.block_size
    if args.segments is not None:
        key = ("base_segments" if args.protocol == "byz-multi-cycle"
               else "num_segments")
        params[key] = args.segments
    if args.tau is not None:
        params["tau"] = args.tau
    params.update(_source_params_for(args))
    return entry.factory(**params)


def _command_list(out) -> int:
    for entry in all_protocols():
        print(f"{entry.name:18} {entry.description}", file=out)
    return 0


def _command_run(args, out) -> int:
    import contextlib

    from repro.profiling import maybe_profile, profile_enabled
    adversary, t = _adversary_for(args)
    recording = None
    context = contextlib.nullcontext()
    if args.telemetry:
        from repro.obs import RecordingTelemetry, using
        recording = RecordingTelemetry()
        context = using(recording)
    with maybe_profile(profile_enabled(args.profile or None),
                       label=f"run {args.protocol}"):
        with context:
            result = run_download(n=args.n, ell=args.ell,
                                  peer_factory=_factory_for(args),
                                  adversary=adversary, t=t, seed=args.seed,
                                  sources=args.sources,
                                  source_faults=_source_faults_for(args),
                                  topology=args.topology)
    if recording is not None:
        from repro.obs import export_run
        count = export_run(args.telemetry, recording, result)
        print(f"telemetry  : {count} events -> {args.telemetry}", file=out)
    print(f"protocol   : {args.protocol}", file=out)
    print(f"setup      : n={args.n}, ell={args.ell}, "
          f"fault={args.fault_model}, beta={args.beta}, "
          f"seed={args.seed}", file=out)
    print(f"faulty set : {sorted(result.faulty)}", file=out)
    print(f"correct    : {result.download_correct}", file=out)
    print(f"complexity : {result.report}", file=out)
    return 0 if result.download_correct else 1


def _command_lower_bound(args, out) -> int:
    import contextlib
    import time

    from repro.experiments import ExperimentSpec, run_experiment
    block_size = (args.block_size if args.block_size is not None
                  else max(1, args.ell // 20))
    spec = ExperimentSpec(
        protocol="byz-committee", n=args.n, ell=args.ell,
        strategy="deterministic",
        protocol_params={"block_size": block_size,
                         "claimed_t": args.claimed_t},
        repeats=args.repeats, base_seed=args.seed, backend="lowerbound")
    recording = None
    context = contextlib.nullcontext()
    if args.telemetry:
        from repro.obs import RecordingTelemetry, using
        recording = RecordingTelemetry()
        context = using(recording)
    started = time.monotonic()
    with context:
        outcome = run_experiment(spec, workers=args.workers)
    if recording is not None:
        from repro.obs import sweep_events, write_events
        from repro.obs.schema import SCHEMA_VERSION
        header = {"event": "sweep_header", "schema": SCHEMA_VERSION,
                  "points": 1, "repeats": args.repeats,
                  "workers": args.workers, "protocol": spec.protocol}
        count = write_events(args.telemetry, sweep_events(
            recording, header=header, wall_s=time.monotonic() - started))
        print(f"telemetry  : {count} events -> {args.telemetry}", file=out)
    fooled = outcome.failed_runs == 0 and outcome.success_rate == 1.0
    print(f"victim queried : {outcome.mean_query_complexity:.0f}/"
          f"{args.ell} bits", file=out)
    print(f"fooled repeats : {outcome.correct_runs}/{outcome.runs}",
          file=out)
    print(f"victim fooled  : {fooled}", file=out)
    return 0


def _parse_axis_values(axis: str, raw: str) -> list:
    """Comma list -> typed values matching the spec field."""
    parts = [part.strip() for part in raw.split(",") if part.strip()]
    if not parts:
        raise ValueError("--values must name at least one value")
    if axis in ("n", "ell", "repeats", "base_seed", "sources"):
        return [int(part) for part in parts]
    if axis == "beta":
        return [float(part) for part in parts]
    return parts


def _command_sweep(args, out) -> int:
    from repro.experiments import (ExperimentSpec, outcomes_table,
                                   run_experiment, sweep_experiment)
    from repro.execution import (ResultCache, RetryPolicy, SweepJournal,
                                 default_cache_dir)
    if (args.axis is None) != (args.values is None):
        raise SystemExit("--axis and --values must be given together")
    strategy = args.strategy or ("deterministic"
                                 if args.backend == "lowerbound"
                                 else "wrong-bits")
    # backend="sync" *is* the synchronous model, so the network field
    # follows it; `run --synchronous` stays the async kernel's
    # unit-latency emulation (see docs/MODEL.md).
    network = ("synchronous" if args.backend == "sync"
               else "asynchronous")
    spec = ExperimentSpec(
        protocol=args.protocol, n=args.n, ell=args.ell,
        fault_model=args.fault_model, beta=args.beta,
        strategy=strategy, network=network,
        protocol_params=_source_params_for(args),
        repeats=args.repeats, base_seed=args.seed, backend=args.backend,
        sources=args.sources, source_faults=_source_faults_for(args),
        proxy_faults=_proxy_faults_for(args), topology=args.topology)
    values = (None if args.axis is None
              else _parse_axis_values(args.axis, args.values))
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    journal = None
    if args.resume:
        journal_dir = (cache.directory if cache is not None
                       else (Path(args.cache_dir) if args.cache_dir
                             else default_cache_dir()))
        journal = SweepJournal(journal_dir / "journal.jsonl")
    if args.max_retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    policy = RetryPolicy(max_attempts=args.max_retries + 1,
                         task_timeout=args.task_timeout)
    import contextlib
    import time

    from repro.profiling import maybe_profile, profile_enabled
    recording = None
    progress = None
    context = contextlib.nullcontext()
    if args.telemetry or args.progress:
        from repro.obs import ProgressTracker, RecordingTelemetry, using
        recording = RecordingTelemetry() if args.telemetry else None
        backend = (ProgressTracker(forward=recording) if args.progress
                   else recording)
        progress = backend if args.progress else None
        context = using(backend)
    started = time.monotonic()
    label = (f"sweep {args.protocol} over {args.axis}" if args.axis
             else f"sweep {args.protocol} (single point)")
    with maybe_profile(profile_enabled(args.profile or None), label=label):
        with context:
            if values is None:
                outcomes = [run_experiment(spec, workers=args.workers,
                                           cache=cache, journal=journal,
                                           policy=policy,
                                           strict=args.strict)]
            else:
                outcomes = sweep_experiment(spec, axis=args.axis,
                                            values=values,
                                            workers=args.workers,
                                            cache=cache,
                                            journal=journal, policy=policy,
                                            strict=args.strict)
    if progress is not None:
        progress.close()
    if recording is not None:
        from repro.obs import sweep_events, write_events
        from repro.obs.schema import SCHEMA_VERSION
        header = {"event": "sweep_header", "schema": SCHEMA_VERSION,
                  "points": len(outcomes), "repeats": args.repeats,
                  "workers": args.workers, "protocol": args.protocol}
        if values is not None:
            header["axis"] = args.axis
            header["values"] = values
        count = write_events(args.telemetry, sweep_events(
            recording, header=header,
            wall_s=time.monotonic() - started))
        print(f"telemetry  : {count} events -> {args.telemetry}", file=out)
    print(outcomes_table(outcomes, axis=args.axis), file=out)
    if cache is not None:
        print(f"cache      : {cache.stats} in {cache.directory}",
              file=out)
    if journal is not None:
        print(f"journal    : {journal.stats} in {journal.path}",
              file=out)
    failed = sum(outcome.failed_runs for outcome in outcomes)
    if failed:
        print(f"degraded   : {failed} repeat(s) failed every retry",
              file=out)
        for outcome in outcomes:
            label_axis = args.axis or "protocol"
            for failure in outcome.failures:
                print(f"  {outcome.spec.protocol}"
                      f"[{getattr(outcome.spec, label_axis)}] {failure}",
                      file=out)
    if args.json_out:
        from repro.persistence import save_outcomes
        save_outcomes(outcomes, args.json_out)
        print(f"outcomes written to {args.json_out}", file=out)
    if args.markdown_out:
        from repro.reporting import render_report, render_sweep
        section = render_sweep(
            outcomes, axis=args.axis or "protocol",
            title=(f"{args.protocol} {args.axis} sweep" if args.axis
                   else f"{args.protocol} ({args.backend})"))
        Path(args.markdown_out).write_text(render_report([section]),
                                           encoding="utf-8")
        print(f"report written to {args.markdown_out}", file=out)
    every_ok = all(outcome.success_rate == 1.0 for outcome in outcomes)
    return 0 if every_ok else 1


def _command_tournament(args, out) -> int:
    import json

    from repro.execution import RetryPolicy, default_cache_dir
    from repro.tournament import (TournamentConfig, league_dashboard_payload,
                                  league_jsonl_lines, render_league,
                                  run_tournament)

    def split(raw):
        return tuple(part.strip() for part in raw.split(",")
                     if part.strip())

    if args.max_retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    journal_path = args.journal
    if journal_path is None and args.resume:
        journal_path = str(default_cache_dir() / "tournament.jsonl")
    config = TournamentConfig(
        protocols=(split(args.protocols) if args.protocols
                   else TournamentConfig.protocols),
        adversaries=split(args.adversaries) if args.adversaries else (),
        topologies=(split(args.topologies) if args.topologies
                    else TournamentConfig.topologies),
        n=args.n, ell=args.ell, repeats=args.repeats,
        base_seed=args.seed, workers=args.workers,
        journal_path=journal_path,
        policy=RetryPolicy(max_attempts=args.max_retries + 1,
                           task_timeout=args.task_timeout))
    result = run_tournament(config)
    print(render_league(result), file=out)
    if result.journal_stats is not None:
        print(f"\njournal    : {result.journal_stats['replayed']} "
              f"replayed / {result.journal_stats['appended']} appended "
              f"in {journal_path}", file=out)
    if args.jsonl_out:
        with open(args.jsonl_out, "w", encoding="utf-8") as handle:
            for line in league_jsonl_lines(result):
                handle.write(line + "\n")
        print(f"cells written to {args.jsonl_out}", file=out)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(league_dashboard_payload(result), handle,
                      indent=2, sort_keys=True)
        print(f"league summary written to {args.json_out}", file=out)
    # Violations are findings, not failures — the league's job is to
    # surface them.  --fail-on-violation turns the run into a gate.
    if args.fail_on_violation and result.violations():
        return 1
    return 0


def _service_url(args) -> str:
    import os
    return (args.server or os.environ.get("REPRO_SERVER")
            or "http://127.0.0.1:8321")


def _service_client(args):
    from repro.service import ServiceClient
    return ServiceClient(_service_url(args))


def _print_job(job: dict, out) -> None:
    progress = f"{job['done']}/{job['total']}"
    correct = "—" if job.get("correct") is None else job["correct"]
    print(f"{job['id']}  {job['state']:<9} {progress:>9}  "
          f"prio={job['priority']:<3} subs={job['submissions']:<2} "
          f"correct={correct}  client={job['client']}", file=out)


def _command_serve(args, out) -> int:
    import asyncio
    import os

    from repro.service import run_server
    data_dir = (args.data_dir or os.environ.get("REPRO_SERVICE_DIR")
                or Path.home() / ".cache" / "repro" / "service")
    cache = (False if args.no_cache
             else (args.cache_dir if args.cache_dir else True))
    try:
        asyncio.run(run_server(
            data_dir, host=args.host, port=args.port, pool=args.pool,
            pool_mode=args.pool_mode, cache=cache,
            port_file=args.port_file,
            log=lambda message: print(message, file=out, flush=True)))
    except KeyboardInterrupt:
        pass
    return 0


def _command_submit(args, out) -> int:
    import dataclasses
    import getpass
    import json

    from repro.experiments import ExperimentSpec, outcomes_table
    from repro.persistence import outcome_from_dict
    if (args.axis is None) != (args.values is None):
        raise SystemExit("--axis and --values must be given together")
    network = ("synchronous" if args.backend == "sync"
               else "asynchronous")
    spec = ExperimentSpec(
        protocol=args.protocol, n=args.n, ell=args.ell,
        fault_model=args.fault_model, beta=args.beta,
        strategy=args.strategy or "wrong-bits", network=network,
        protocol_params=_source_params_for(args),
        repeats=args.repeats, base_seed=args.seed, backend=args.backend,
        sources=args.sources, source_faults=_source_faults_for(args),
        proxy_faults=_proxy_faults_for(args), topology=args.topology)
    values = (() if args.axis is None
              else _parse_axis_values(args.axis, args.values))
    client = _service_client(args)
    job = client.submit(dataclasses.asdict(spec), axis=args.axis,
                        values=values, priority=args.priority,
                        client=args.client or getpass.getuser())
    verb = "submitted" if job["created"] else "coalesced into"
    print(f"{verb} job {job['id']} ({job['state']}, "
          f"{job['total']} tasks) at {_service_url(args)}", file=out)
    if not (args.wait or args.follow):
        return 0
    if args.follow:
        for entry in client.stream(job["id"]):
            print(json.dumps(entry, sort_keys=True), file=out)
    final = client.wait(job["id"])
    if final["state"] != "done":
        print(f"job {job['id']} ended {final['state']}: "
              f"{final.get('error') or ''}", file=out)
        return 1
    payload = client.result(job["id"])
    outcomes = [outcome_from_dict(entry) for entry in payload["outcomes"]]
    print(outcomes_table(outcomes, axis=args.axis), file=out)
    return 0 if final["correct"] else 1


def _command_status(args, out) -> int:
    client = _service_client(args)
    if args.job is None:
        jobs = client.jobs()
        if not jobs:
            print("no jobs", file=out)
            return 0
        for job in jobs:
            _print_job(job, out)
        return 0
    _print_job(client.status(args.job), out)
    return 0


def _command_result(args, out) -> int:
    from repro.experiments import outcomes_table
    from repro.persistence import outcome_from_dict, save_outcomes
    client = _service_client(args)
    payload = client.result(args.job)
    outcomes = [outcome_from_dict(entry) for entry in payload["outcomes"]]
    print(outcomes_table(outcomes), file=out)
    if args.json_out:
        save_outcomes(outcomes, args.json_out)
        print(f"outcomes written to {args.json_out}", file=out)
    return 0 if payload["correct"] else 1


def _command_cancel(args, out) -> int:
    job = _service_client(args).cancel(args.job)
    print(f"job {job['id']} is now {job['state']}", file=out)
    return 0


def _apply_scale(args) -> None:
    """Export ``--scale`` through the environment flag: the run itself
    and every pool worker then resolve the same setting (the scale
    path deliberately stays out of spec/cache identity)."""
    if getattr(args, "scale", None) is not None:
        import os

        from repro.sim.scalepath import ENV_FLAG, resolve_scale
        os.environ[ENV_FLAG] = args.scale
        resolve_scale(args.scale)  # fail fast on a bad backend name


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    _apply_scale(args)
    if args.command == "list":
        return _command_list(out)
    if args.command == "run":
        return _command_run(args, out)
    if args.command == "lower-bound":
        return _command_lower_bound(args, out)
    if args.command == "sweep":
        return _command_sweep(args, out)
    if args.command == "tournament":
        return _command_tournament(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    if args.command in ("submit", "status", "result", "cancel"):
        from repro.service.client import ServiceError
        handler = {"submit": _command_submit, "status": _command_status,
                   "result": _command_result,
                   "cancel": _command_cancel}[args.command]
        try:
            return handler(args, out)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except BrokenPipeError:
            # Our own stdout closed early (`repro status | head`);
            # the conventional quiet exit, not a server problem.  Point
            # stdout at devnull so the interpreter's exit flush doesn't
            # raise a second, unraisable EPIPE.
            import os
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach {_service_url(args)}: {exc}",
                  file=sys.stderr)
            return 1
    if args.command == "trace":
        from repro.obs.trace_cli import run_trace_command
        return run_trace_command(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
