"""The naive Download protocol: query everything yourself.

Every peer reads the entire input directly from the source and never
talks to anyone.  Query complexity is exactly ``ell`` bits — the
worst possible — but the protocol is correct under *any* failure
pattern and any ``beta < 1``, including a Byzantine majority.  By
Theorem 3.1 it is also the *only* deterministic option once
``beta >= 1/2``, which is what makes it an essential baseline rather
than a strawman.
"""

from __future__ import annotations

from typing import Iterator

from repro.protocols.base import DownloadPeer

#: Upper bound on bits per source request, so that one naive peer does
#: not materialize a single huge response message.
_CHUNK = 4096


class NaiveDownloadPeer(DownloadPeer):
    """Each peer queries all ``ell`` bits directly."""

    protocol_name = "naive"
    peer_to_peer = False  # source-only: shardable (see execution.sharding)

    def body(self) -> Iterator:
        self.begin_cycle()
        for lo in range(0, self.ell, _CHUNK):
            hi = min(self.ell, lo + _CHUNK)
            values = yield from self.query_bits(range(lo, hi))
            self.learn_many(values)
        self.finish_with_working()
