"""The paper's Download protocols.

===================  ==========================  ====================
Protocol             Paper artifact              Regime
===================  ==========================  ====================
naive                folklore baseline           any ``beta < 1``
balanced             Section 1.2 ideal           fault-free
crash-one            Algorithm 1 / Thm 2.3       one crash
crash-multi          Algorithm 2 / Lemma 2.11    any crash fraction
crash-multi-fast     Theorem 2.13                any crash fraction
byz-committee        Theorem 3.4                 Byzantine, beta < 1/2
byz-two-cycle        Protocol 4 / Theorem 3.7    Byzantine, beta < 1/2
byz-multi-cycle      Theorem 3.12                Byzantine, beta < 1/2
===================  ==========================  ====================

For ``beta >= 1/2`` the naive protocol is provably the only
deterministic option (Theorem 3.1) and randomization cannot help
(Theorem 3.2) — see :mod:`repro.lowerbounds`.
"""

from repro.protocols.balanced import BalancedDownloadPeer, ShareMessage
from repro.protocols.base import UNKNOWN, DownloadPeer
from repro.protocols.byz_committee import (
    ByzCommitteeDownloadPeer,
    CommitteeReport,
)
from repro.protocols.byz_multi_cycle import (
    ByzMultiCycleDownloadPeer,
    CycleReport,
    choose_base_segments,
)
from repro.protocols.byz_two_cycle import (
    ByzTwoCycleDownloadPeer,
    SegmentReport,
    TwoCycleParameters,
    choose_two_cycle_parameters,
)
from repro.protocols.crash_multi import (
    CrashMultiDownloadPeer,
    CrashMultiFastDownloadPeer,
    default_direct_threshold,
    planned_phases,
)
from repro.protocols.crash_one import CrashOneDownloadPeer
from repro.protocols.decode import (
    majority_decode,
    majority_threshold,
    threshold_decode,
)
from repro.protocols.multisource import (
    CrossValidateDownloadPeer,
    CrossValidateEscalateDownloadPeer,
)
from repro.protocols.naive import NaiveDownloadPeer
from repro.protocols.one_round import OneRoundDownloadPeer, OneRoundShare
from repro.protocols.retrieval import (
    count_ones,
    index_of_first_one,
    majority_bit,
    make_retrieval_class,
    parity,
    retrieval_outputs,
    segment_extractor,
)
from repro.protocols.registry import (
    ProtocolEntry,
    all_protocols,
    get,
    protocols_for,
)

__all__ = [
    "BalancedDownloadPeer",
    "ByzCommitteeDownloadPeer",
    "ByzMultiCycleDownloadPeer",
    "ByzTwoCycleDownloadPeer",
    "CommitteeReport",
    "CrashMultiDownloadPeer",
    "CrashMultiFastDownloadPeer",
    "CrashOneDownloadPeer",
    "CrossValidateDownloadPeer",
    "CrossValidateEscalateDownloadPeer",
    "CycleReport",
    "DownloadPeer",
    "NaiveDownloadPeer",
    "OneRoundDownloadPeer",
    "OneRoundShare",
    "ProtocolEntry",
    "SegmentReport",
    "ShareMessage",
    "TwoCycleParameters",
    "UNKNOWN",
    "all_protocols",
    "choose_base_segments",
    "count_ones",
    "majority_decode",
    "majority_threshold",
    "threshold_decode",
    "index_of_first_one",
    "majority_bit",
    "make_retrieval_class",
    "parity",
    "retrieval_outputs",
    "segment_extractor",
    "choose_two_cycle_parameters",
    "default_direct_threshold",
    "get",
    "planned_phases",
    "protocols_for",
]
