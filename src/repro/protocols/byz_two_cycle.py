"""Protocol 4 / Theorem 3.7: the 2-cycle randomized Byzantine download.

Cycle 1 — the input is cut into ``s`` segments; each peer picks one
uniformly at random, queries it whole, and broadcasts
``(segment, string)`` to everyone.

Cycle 2 — each peer waits until it holds reports from at least
``n - t`` peers (itself included).  Among the senders at least
``n - 2t`` are honest, and because the adversary fixed its schedule
before any coin was flipped, those honest peers' segment choices are
uniform — so every segment is covered by at least ``tau`` honest,
*consistent* reports w.h.p. (Claim 5).  For every segment the peer
feeds the tau-frequent strings (:class:`~repro.core.frequent.FrequencyTable`)
into a decision tree (:mod:`~repro.core.decision_tree`) and resolves the
survivors with a few adaptive source queries.  Byzantine peers can push
fabricated strings past the tau filter only by spending ``>= tau``
corrupted identities per fake, and each fake costs every honest peer at
most one extra tree query — that is the ``n / tau`` term of the bound.

Parameter choice (:func:`choose_two_cycle_parameters`) follows the
paper's three cases: sample mode with ``s ~ (n - 2t) / (2 log2 n)``
segments when the input is large, a clamped variant in the middle, and
plain naive querying when the input is so small that sampling cannot
beat it (Case 3).

Failure mode (by design, matching the theorem's "w.h.p."): if some
segment ends up with fewer than ``tau`` honest reports among the
``n - t`` the peer heard, the honest string may miss the tree and the
peer may output a wrong array.  The benchmarks measure this failure
rate and check it against the Chernoff budget; correctness tests pin
seeds/parameters where the premise of Claim 5 holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.decision_tree import build_tree, determine_via_peer
from repro.core.frequent import FrequencyTable
from repro.core.segments import Segmentation
from repro.protocols.base import DownloadPeer
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message
from repro.sim.peer import SimEnv


@dataclass(frozen=True)
class SegmentReport(Message):
    """Cycle-1 broadcast: "I sampled this segment; here is its value"."""

    segment: int
    string: str


@dataclass(frozen=True)
class TwoCycleParameters:
    """Resolved parameters for one run of the 2-cycle protocol."""

    num_segments: int
    tau: int
    naive: bool

    def __post_init__(self) -> None:
        if not self.naive:
            if self.num_segments < 1:
                raise ValueError("num_segments must be >= 1")
            if self.tau < 1:
                raise ValueError("tau must be >= 1")


def choose_two_cycle_parameters(n: int, t: int, ell: int) -> TwoCycleParameters:
    """The paper's case analysis, made concrete.

    Honest support floor ``h = n - 2t`` (hear ``n - t``, up to ``t`` of
    them Byzantine).  Sample mode needs each of ``s`` segments to catch
    ``tau`` of the ``h`` honest picks w.h.p., so ``s`` is capped at
    ``h / (2 * max(2, log2 n))`` and ``tau`` is half the resulting
    per-segment expectation.  When that cap leaves ``s <= 1`` — or when
    the segment cost ``ell / s`` is no better than ``ell`` (tiny
    inputs, Case 3) — the peer falls back to naive querying.
    """
    if 2 * t >= n:
        # beta >= 1/2: Theorem 3.2 says sampling cannot work; the
        # protocol degenerates to the naive one (its only safe mode).
        return TwoCycleParameters(num_segments=1, tau=1, naive=True)
    honest_floor = n - 2 * t
    log_term = max(2.0, math.log2(n))
    segments = int(honest_floor // (2 * log_term))
    if segments <= 1 or ell <= 4 * n:
        return TwoCycleParameters(num_segments=1, tau=1, naive=True)
    segments = min(segments, ell)
    tau = max(1, honest_floor // (2 * segments))
    return TwoCycleParameters(num_segments=segments, tau=tau, naive=False)


class ByzTwoCycleDownloadPeer(DownloadPeer):
    """2-cycle randomized download (``beta < 1/2``)."""

    protocol_name = "byz-two-cycle"

    def __init__(self, pid: int, env: SimEnv,
                 num_segments: Optional[int] = None,
                 tau: Optional[int] = None) -> None:
        super().__init__(pid, env)
        params = choose_two_cycle_parameters(env.n, env.t, env.ell)
        if num_segments is not None or tau is not None:
            if num_segments is None or tau is None:
                raise ConfigurationError(
                    "override num_segments and tau together or not at all")
            params = TwoCycleParameters(num_segments=num_segments, tau=tau,
                                        naive=False)
        self.params = params
        self.segmentation = (None if params.naive else
                             Segmentation(env.ell, params.num_segments))
        self.reports = FrequencyTable()
        self.tree_queries = 0
        self.fallback_segments = 0
        self.on_message(SegmentReport, self._on_report)

    def _on_report(self, message: SegmentReport) -> None:
        if self.segmentation is None:
            return
        if not 0 <= message.segment < self.segmentation.num_segments:
            return  # Byzantine garbage: no such segment
        lo, hi = self.segmentation.bounds(message.segment)
        if len(message.string) != hi - lo:
            return  # wrong length can never be the segment's value
        self.reports.add(message.sender, message.segment, message.string)

    # -- body -----------------------------------------------------------------

    def body(self) -> Iterator:
        if self.params.naive:
            yield from self._run_naive()
            return

        # ---- cycle 1: sample, query, broadcast ----
        self.begin_cycle()
        self.note_phase("sample")
        picked = self.rng.randrange(self.segmentation.num_segments)
        lo, hi = self.segmentation.bounds(picked)
        string = yield from self.query_segment(lo, hi)
        self.learn_string(lo, string)
        self.reports.add(self.pid, picked, string)
        self.broadcast(SegmentReport(sender=self.pid, segment=picked,
                                     string=string))

        # ---- cycle 2: wait for n - t reporters, then determine ----
        self.begin_cycle()
        self.note_phase("determine")
        needed = self.n - self.t
        yield self.wait_until(
            lambda: len(self._reporters()) >= needed,
            f"segment reports from {needed} peers (incl. self)")
        for segment in range(self.segmentation.num_segments):
            if segment == picked:
                continue
            yield from self._determine_segment(segment)
        self.finish_with_working()

    def _reporters(self) -> set[int]:
        reporters = self.inbox.senders(SegmentReport)
        reporters.add(self.pid)
        return reporters

    def _determine_segment(self, segment: int) -> Iterator:
        """Resolve one segment from tau-frequent reports (or fall back
        to querying it outright when nothing qualified)."""
        lo, hi = self.segmentation.bounds(segment)
        candidates = self.reports.frequent(segment, self.params.tau)
        if not candidates:
            # No string reached the threshold (a low-probability event
            # under Claim 5's premise): query the segment directly.
            self.fallback_segments += 1
            string = yield from self.query_segment(lo, hi)
            self.learn_string(lo, string)
            return
        tree = build_tree(candidates)
        string, spent = yield from determine_via_peer(self, tree, lo)
        self.tree_queries += spent
        self.learn_string(lo, string)

    def _run_naive(self) -> Iterator:
        self.begin_cycle()
        for lo in range(0, self.ell, 4096):
            hi = min(self.ell, lo + 4096)
            values = yield from self.query_bits(range(lo, hi))
            self.learn_many(values)
        self.finish_with_working()
