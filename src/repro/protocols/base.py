"""Common base class for Download protocol peers.

A protocol is a :class:`~repro.sim.peer.Peer` subclass whose ``body``
implements the peer-local algorithm.  :meth:`DownloadPeer.factory`
turns the class (plus protocol parameters) into the ``peer_factory``
callable :class:`~repro.sim.runner.Simulation` expects, so runs read::

    run_download(n=16, ell=1024,
                 peer_factory=CrashMultiDownloadPeer.factory(),
                 adversary=CrashAdversary(crash_fraction=0.5))
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.peer import Peer, SimEnv
from repro.util.bitarrays import BitArray

#: Sentinel bit value for "not learned yet" in working output arrays.
UNKNOWN = -1


class BoundPeerFactory:
    """A ``peer_factory`` with protocol parameters bound.

    A class rather than a closure so factories pickle cleanly into the
    worker processes of the parallel experiment engine
    (:mod:`repro.execution`); the protocol class is pickled by
    reference and the parameters by value.
    """

    def __init__(self, protocol_class: type, params: dict) -> None:
        self.protocol_class = protocol_class
        self.params = dict(params)

    def __call__(self, pid: int, env: SimEnv) -> "DownloadPeer":
        return self.protocol_class(pid, env, **self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"{self.protocol_class.__name__}.factory"
                f"(**{self.params!r})")


class DownloadPeer(Peer):
    """Base class for every Download protocol implementation."""

    #: Human-readable protocol name (subclasses override).
    protocol_name = "download"

    #: Does this protocol exchange peer-to-peer messages?  ``False``
    #: marks *message-free* protocols (each peer talks only to the
    #: source), whose peers form independent groups — the sharded
    #: execution layer (:mod:`repro.execution.sharding`) may then split
    #: one run across processes with bit-identical results.
    peer_to_peer = True

    def __init__(self, pid: int, env: SimEnv) -> None:
        super().__init__(pid, env)
        # Working copy of the output: -1 marks unknown bits.  BitArray
        # cannot hold the sentinel, so the working array is a list and
        # is packed only at finish time.  On the scale path the list is
        # allocated lazily on first touch — board-driven protocols
        # never touch it, and n * ell sentinel lists are exactly the
        # per-object memory the scale path exists to avoid.
        self._working: Optional[list[int]] = (
            None if env.scale is not None else [UNKNOWN] * env.ell)
        # Invariant: number of UNKNOWN entries in ``working``.  Learned
        # bits are never overwritten, so the count only decreases; it
        # makes ``all_known``/``known_count`` O(1) instead of a scan
        # per delivered message.
        self._unknown_count = env.ell

    @property
    def working(self) -> list[int]:
        array = self._working
        if array is None:
            array = self._working = [UNKNOWN] * self.env.ell
        return array

    @working.setter
    def working(self, array: list[int]) -> None:
        self._working = array

    @classmethod
    def factory(cls, **params) -> Callable[[int, SimEnv], "DownloadPeer"]:
        """Bind protocol parameters; returns a picklable ``peer_factory``."""
        return BoundPeerFactory(cls, params)

    # -- observability -----------------------------------------------------

    def note_phase(self, name: str) -> None:
        """Telemetry marker: this peer just entered phase ``name``.

        Protocol bodies call this at each phase transition so exported
        runs can attribute every query to the phase the peer was in
        (``repro trace summary``'s per-phase histogram).  Free when
        telemetry is disabled; never affects the run either way.
        """
        scale = self.env.scale
        if scale is not None:
            scale.state.set_phase(self.pid, name)
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.emit("phase", {"t": self.env.kernel.now,
                                     "peer": self.pid, "name": name,
                                     "cycle": self.cycle})

    # -- working-array helpers ---------------------------------------------

    def learn(self, index: int, bit: int) -> None:
        """Record bit ``index``; learned values are never overwritten.

        The paper's Claim 1 proof leans on "values are never
        overwritten": once a peer knows a bit (from its own query or an
        honest report), later messages cannot change it.
        """
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        working = self.working
        if working[index] == UNKNOWN:
            working[index] = bit
            self._note_learned(1)

    def learn_many(self, values: dict[int, int]) -> None:
        """Record several bits at once."""
        working = self.working
        learned = 0
        for index, bit in values.items():
            if bit not in (0, 1):
                raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            if working[index] == UNKNOWN:
                working[index] = bit
                learned += 1
        if learned:
            self._note_learned(learned)

    def learn_string(self, lo: int, string: str) -> None:
        """Record a segment string starting at bit ``lo``."""
        working = self.working
        learned = 0
        for offset, ch in enumerate(string):
            index = lo + offset
            if working[index] == UNKNOWN:
                working[index] = 1 if ch == "1" else 0
                learned += 1
        if learned:
            self._note_learned(learned)

    def _note_learned(self, count: int) -> None:
        """Shrink the unknown-count invariant by ``count`` bits, and
        mirror the new known count into the run's contiguous
        :class:`~repro.sim.peerstate.PeerStateArrays` when the scale
        path is active (one array write per batch, so whole-fleet
        progress reads never touch the peer objects)."""
        self._unknown_count -= count
        scale = self.env.scale
        if scale is not None:
            scale.state.unknown_count[self.pid] = self._unknown_count

    def unknown_indices(self) -> list[int]:
        """Sorted indices this peer has not learned yet."""
        if self._unknown_count == 0:
            return []
        return [index for index, bit in enumerate(self.working)
                if bit == UNKNOWN]

    def known_count(self) -> int:
        """Number of learned bits."""
        return self.ell - self._unknown_count

    def all_known(self) -> bool:
        """True when every bit is learned."""
        return self._unknown_count == 0

    def known_subset(self, indices) -> dict[int, int]:
        """The subset of ``indices`` this peer knows, with values."""
        return {index: self.working[index] for index in indices
                if self.working[index] != UNKNOWN}

    def finish_with_working(self) -> None:
        """Terminate, packing the working array into the output.

        Raises if any bit is still unknown — terminating without the
        full array is a protocol bug, not a tolerable outcome.
        """
        missing = self.unknown_indices()
        if missing:
            raise RuntimeError(
                f"peer {self.pid} tried to terminate with "
                f"{len(missing)} unknown bits (first: {missing[:5]})")
        self.finish(BitArray.from_bits(self.working))
