"""A single-round (2-cycle, one exchange) Download protocol.

The companion paper proves that *extremely fast* protocols are
inherently query-hungry: in any single-round randomized protocol each
peer must essentially query the entire input.  To make that trade-off
measurable, this module implements the natural one-exchange protocol
family:

1. every peer queries ``redundancy`` round-robin slices (its own plus
   ``redundancy - 1`` more, chosen deterministically by ID shift or
   uniformly at random), so each bit is covered by ``redundancy`` peers
   in expectation;
2. one broadcast of the queried values; wait for ``n - t`` shares;
3. **completion**: whatever is still unknown is queried directly —
   a one-round protocol has no further exchanges to fall back on, so
   the residue lands on the query bill.

Per-peer cost ≈ ``redundancy * ell / n`` (step 1) plus the uncovered
residue (step 3).  Against an oblivious adversary, random redundancy
``r`` loses a bit only if all its ``r`` owners crash (``~ beta^r``);
against the *adaptive* crash adversary
(:class:`repro.adversary.adaptive.AdaptiveCrashAdversary`), which picks
its victims after seeing who queried what, the residue is maximal —
the measured blow-up that the companion paper's one-round lower bound
formalizes.  Algorithm 2 escapes by iterating; this protocol cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.assignment import round_robin_indices
from repro.protocols.base import DownloadPeer
from repro.sim.messages import Message
from repro.sim.peer import SimEnv


@dataclass(frozen=True)
class OneRoundShare(Message):
    """The single exchange: every value the sender queried."""

    values: dict[int, int]


class OneRoundDownloadPeer(DownloadPeer):
    """One query phase, one exchange, direct completion."""

    protocol_name = "one-round"

    def __init__(self, pid: int, env: SimEnv, redundancy: int = 1,
                 randomized: bool = False) -> None:
        super().__init__(pid, env)
        if not 1 <= redundancy <= env.n:
            raise ValueError(
                f"redundancy must be in [1, n], got {redundancy}")
        self.redundancy = redundancy
        self.randomized = randomized
        self.completion_queries = 0

    def _my_slices(self) -> list[int]:
        """The slice owners this peer covers."""
        if self.randomized:
            return self.rng.sample(range(self.n), self.redundancy)
        return [(self.pid + shift) % self.n
                for shift in range(self.redundancy)]

    def body(self) -> Iterator:
        self.begin_cycle()
        self.note_phase("share")
        wanted: set[int] = set()
        for owner in self._my_slices():
            wanted.update(round_robin_indices(owner, self.ell, self.n))
        values = yield from self.query_bits(sorted(wanted))
        self.learn_many(values)
        self.broadcast(OneRoundShare(sender=self.pid, values=values))

        self.begin_cycle()
        self.note_phase("collect")
        needed = self.n - self.t - 1
        yield self.wait_for_messages(OneRoundShare, needed,
                                     description=f"{needed} shares")
        for message in self.inbox.of_type(OneRoundShare):
            self.learn_many(message.values)

        # The single round is over; the residue can only come from the
        # source now.
        self.note_phase("completion")
        residue = self.unknown_indices()
        self.completion_queries = len(residue)
        values = yield from self.query_bits(residue)
        self.learn_many(values)
        self.finish_with_working()
