"""General retrieval problems: compute ``f(X)`` instead of ``X``.

The DR model's general class (Section 1.1): every peer must output
``f(X)`` for some computable ``f``.  The paper's footnote observes the
reduction that makes Download *the* fundamental problem: solve
Download, then compute ``f`` locally.  This module packages that
reduction as a reusable peer wrapper, plus the standard functions a
downstream user reaches for.

A :class:`RetrievalPeer` runs any Download protocol unchanged and,
upon learning ``X``, stores ``f(X)`` in :attr:`retrieval_output`
(the Download output array remains available too — the reduction
pays Download's full query complexity, which for ``beta >= 1/2``
Byzantine settings is provably unavoidable even for one-bit ``f``
whenever ``f`` depends on every input bit).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.peer import SimEnv
from repro.util.bitarrays import BitArray

RetrievalFunction = Callable[[BitArray], object]


def parity(data: BitArray) -> int:
    """XOR of all input bits."""
    return data.count_ones() & 1


def count_ones(data: BitArray) -> int:
    """Population count."""
    return data.count_ones()


def majority_bit(data: BitArray) -> int:
    """1 iff more than half the bits are set (ties go to 0)."""
    return 1 if 2 * data.count_ones() > len(data) else 0


def segment_extractor(lo: int, hi: int) -> RetrievalFunction:
    """Factory: extract the bit string of ``[lo, hi)``."""
    def extract(data: BitArray) -> str:
        return data.segment(lo, hi)
    return extract


def index_of_first_one(data: BitArray) -> Optional[int]:
    """Position of the first set bit (None for all-zeros)."""
    for index, bit in enumerate(data):
        if bit:
            return index
    return None


def make_retrieval_class(download_class, function: RetrievalFunction):
    """Build a retrieval peer class from a Download peer class.

    >>> PeerClass = make_retrieval_class(CrashMultiDownloadPeer, parity)
    >>> run_download(..., peer_factory=PeerClass.factory())
    """

    class RetrievalPeer(download_class):
        retrieval_function = staticmethod(function)
        protocol_name = f"retrieval({download_class.protocol_name})"

        def __init__(self, pid: int, env: SimEnv, **params) -> None:
            super().__init__(pid, env, **params)
            self.retrieval_output = None

        def finish(self, output: BitArray) -> None:
            self.retrieval_output = self.retrieval_function(output)
            super().finish(output)

    RetrievalPeer.__name__ = f"Retrieval{download_class.__name__}"
    RetrievalPeer.__qualname__ = RetrievalPeer.__name__
    return RetrievalPeer


def retrieval_outputs(result, function: RetrievalFunction) -> dict[int, object]:
    """Apply ``function`` to every terminated honest peer's output.

    Because a :class:`RetrievalPeer` computes ``f`` on exactly the
    array it outputs, this reproduces each peer's
    ``retrieval_output`` from the :class:`~repro.sim.runner.RunResult`
    alone.
    """
    return {pid: function(result.outputs[pid])
            for pid in sorted(result.honest)
            if result.statuses[pid].terminated
            and result.outputs.get(pid) is not None}
