"""Cross-validation decode rules, as pure functions.

When a peer queries the same position on ``q`` endpoints of a
:class:`~repro.sim.sourceset.SourceSet`, the answers form a vote
multiset and a *decode rule* turns votes into a bit (or refuses).
Keeping the rules pure — no peer state, no simulator types — makes
them property-testable in isolation (``tests/property/
test_property_decode.py`` checks them against naive references and
for permutation invariance in source order).

Two rules:

- :func:`majority_decode` — a bit wins once **strictly more than half
  of the q queried endpoints** voted for it.  The threshold is over
  ``q``, not over the votes received so far, so a decode reached early
  (before slow or withholding endpoints answer) can never be reversed
  by late votes; with ``q >= 2f + 1`` and at most ``f`` faulty
  endpoints, the ``f + 1`` honest majority always decodes the truth.
- :func:`threshold_decode` — a bit wins iff it is the **only** value
  reaching an explicit vote count (useful for unanimity checks:
  ``threshold = q`` accepts only all-agree answers).

Both return ``None`` while undecided, so protocol code can keep
waiting for more votes or fall back deterministically.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

__all__ = [
    "majority_decode",
    "majority_decode_reference",
    "majority_threshold",
    "threshold_decode",
    "threshold_decode_reference",
]


def majority_threshold(q: int) -> int:
    """Votes needed for a strict majority of ``q`` queried sources."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    return q // 2 + 1


def majority_decode(votes: Iterable[int], q: int) -> Optional[int]:
    """The bit holding a strict majority of ``q``, or None if neither.

    ``votes`` are the 0/1 answers received so far from the ``q``
    queried endpoints (missing answers simply aren't in the iterable).
    """
    need = majority_threshold(q)
    ones = 0
    total = 0
    for vote in votes:
        if vote not in (0, 1):
            raise ValueError(f"votes must be bits, got {vote!r}")
        ones += vote
        total += 1
    if total > q:
        raise ValueError(f"{total} votes from only q={q} sources")
    if ones >= need:
        return 1
    if total - ones >= need:
        return 0
    return None


def threshold_decode(votes: Iterable[int],
                     threshold: int) -> Optional[int]:
    """The unique bit with at least ``threshold`` votes, or None.

    None means *undecided*: either no value reached the threshold yet,
    or (with a threshold at or below half the votes) both did — an
    ambiguity the caller must treat as a disagreement, not an answer.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    ones = 0
    total = 0
    for vote in votes:
        if vote not in (0, 1):
            raise ValueError(f"votes must be bits, got {vote!r}")
        ones += vote
        total += 1
    hit = [bit for bit, count in ((1, ones), (0, total - ones))
           if count >= threshold]
    return hit[0] if len(hit) == 1 else None


# -- naive references (the property tests' independent oracle) ------------


def majority_decode_reference(votes: Iterable[int],
                              q: int) -> Optional[int]:
    """Counter-based restatement of :func:`majority_decode`."""
    votes = list(votes)
    if len(votes) > q:
        raise ValueError(f"{len(votes)} votes from only q={q} sources")
    counts = Counter(votes)
    winners = [bit for bit in (0, 1)
               if counts.get(bit, 0) > q / 2]
    return winners[0] if winners else None


def threshold_decode_reference(votes: Iterable[int],
                               threshold: int) -> Optional[int]:
    """Counter-based restatement of :func:`threshold_decode`."""
    counts = Counter(votes)
    winners = [bit for bit in (0, 1)
               if counts.get(bit, 0) >= threshold]
    return winners[0] if len(winners) == 1 else None
