"""Theorem 3.12: the multi-cycle randomized Byzantine download.

The 2-cycle protocol's weak spot is the ``ell / s`` cost of the one
whole-segment query.  The multi-cycle protocol amortizes it away by
*doubling* segments across ``log2(s) + 1`` cycles
(:class:`~repro.core.segments.HierarchicalSegmentation`):

- **Cycle 1** — exactly the 2-cycle protocol's first cycle: sample one
  of ``s`` base segments u.a.r., query it whole, broadcast the string.
- **Cycle r >= 2** — sample one cycle-``r`` segment u.a.r.  It is the
  concatenation of two cycle-``(r-1)`` segments; resolve each child
  with a decision tree over the tau-frequent cycle-``(r-1)`` reports
  (plus a handful of source queries), concatenate, broadcast the
  result as a cycle-``r`` report.
- **Final cycle** — a single segment covers the whole input; resolving
  its two children yields the output.  (The final result needs no
  broadcast; every peer performs the final resolution itself.)

Correctness is Lemma 3.10's induction: w.h.p. every cycle-``r`` segment
was sampled by at least ``tau_r`` honest peers who — inductively —
learned it correctly and broadcast consistent strings, so the true
string is tau-frequent for every child and decision trees return it.

The per-cycle thresholds ``tau_r`` scale with the per-segment honest
expectation ``(n - 2t) / s_r``, which doubles every cycle — later
cycles are progressively safer.  Expected per-peer queries: the
``ell / s`` base segment plus ``O(n / tau)`` tree queries per cycle
over ``O(log s)`` cycles (the paper's ``Õ(ell / n)`` for suitable
``s``, ``beta`` constant ``< 1/2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.decision_tree import build_tree, determine_via_peer
from repro.core.frequent import FrequencyTable
from repro.core.segments import (
    HierarchicalSegmentation,
    largest_power_of_two_at_most,
)
from repro.protocols.base import DownloadPeer
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message
from repro.sim.peer import SimEnv


@dataclass(frozen=True)
class CycleReport(Message):
    """A peer's resolved string for the segment it sampled in ``cycle``."""

    cycle: int
    segment: int
    string: str


def choose_base_segments(n: int, t: int, ell: int) -> int:
    """Power-of-two base segment count for the doubling hierarchy.

    Starts from the same ``(n - 2t) / (2 log2 n)`` cap as the 2-cycle
    protocol and rounds down to a power of two (the hierarchy halves
    the count every cycle).  Returns 1 when sampling cannot be safe —
    the protocol then degenerates to a single naive cycle.
    """
    if 2 * t >= n or ell <= 4 * n:
        return 1
    honest_floor = n - 2 * t
    cap = int(honest_floor // (2 * max(2.0, math.log2(n))))
    if cap <= 1:
        return 1
    return largest_power_of_two_at_most(min(cap, ell))


class ByzMultiCycleDownloadPeer(DownloadPeer):
    """Multi-cycle randomized download (``beta < 1/2``)."""

    protocol_name = "byz-multi-cycle"

    def __init__(self, pid: int, env: SimEnv,
                 base_segments: Optional[int] = None,
                 tau: Optional[int] = None) -> None:
        super().__init__(pid, env)
        if base_segments is None:
            base_segments = choose_base_segments(env.n, env.t, env.ell)
        if base_segments & (base_segments - 1):
            raise ConfigurationError(
                f"base_segments must be a power of two, got {base_segments}")
        self.hierarchy = HierarchicalSegmentation(env.ell, base_segments)
        self.base_tau = tau  # None = per-cycle default
        self.reports: dict[int, FrequencyTable] = {}
        self.tree_queries = 0
        self.fallback_segments = 0
        self.on_message(CycleReport, self._on_report)

    # -- thresholds --------------------------------------------------------

    def tau_for_cycle(self, cycle: int) -> int:
        """Frequency threshold applied to cycle-``cycle`` reports."""
        if self.base_tau is not None:
            return self.base_tau
        honest_floor = max(1, self.n - 2 * self.t)
        segments = self.hierarchy.segments_in_cycle(cycle)
        return max(1, honest_floor // (2 * segments))

    # -- report intake -----------------------------------------------------------

    def _on_report(self, message: CycleReport) -> None:
        if not 1 <= message.cycle < self.hierarchy.num_cycles:
            return  # final-cycle reports are never sent; reject garbage
        count = self.hierarchy.segments_in_cycle(message.cycle)
        if not 0 <= message.segment < count:
            return
        lo, hi = self.hierarchy.bounds(message.cycle, message.segment)
        if len(message.string) != hi - lo:
            return
        table = self.reports.setdefault(message.cycle, FrequencyTable())
        table.add(message.sender, message.segment, message.string)

    def _reporters(self, cycle: int) -> set[int]:
        table = self.reports.get(cycle)
        reporters = set() if table is None else set.union(
            set(), *(table.reporters(segment)
                     for segment in table.segments()))
        reporters.add(self.pid)
        return reporters

    # -- body -----------------------------------------------------------------------

    def body(self) -> Iterator:
        if self.hierarchy.base_segments == 1:
            # Degenerate hierarchy: a single "segment" is the input.
            self.begin_cycle()
            string = yield from self.query_segment(0, self.ell)
            self.learn_string(0, string)
            self.finish_with_working()
            return

        # ---- cycle 1: sample a base segment ----
        self.begin_cycle()
        picked = self.rng.randrange(self.hierarchy.base_segments)
        lo, hi = self.hierarchy.bounds(1, picked)
        string = yield from self.query_segment(lo, hi)
        self.learn_string(lo, string)
        self._record_own(1, picked, string)
        self.broadcast(CycleReport(sender=self.pid, cycle=1, segment=picked,
                                   string=string))

        # ---- cycles 2 .. R ----
        for cycle in range(2, self.hierarchy.num_cycles + 1):
            self.begin_cycle()
            needed = self.n - self.t
            yield self.wait_until(
                lambda c=cycle - 1, k=needed: len(self._reporters(c)) >= k,
                f"cycle {cycle - 1} reports from {needed} peers")
            count = self.hierarchy.segments_in_cycle(cycle)
            segment = (0 if count == 1
                       else self.rng.randrange(count))
            resolved = yield from self._resolve(cycle, segment)
            if cycle < self.hierarchy.num_cycles:
                self._record_own(cycle, segment, resolved)
                self.broadcast(CycleReport(sender=self.pid, cycle=cycle,
                                           segment=segment, string=resolved))

        # The final cycle's lone segment is the entire input.
        self.finish_with_working()

    def _record_own(self, cycle: int, segment: int, string: str) -> None:
        table = self.reports.setdefault(cycle, FrequencyTable())
        table.add(self.pid, segment, string)

    def _resolve(self, cycle: int, segment: int) -> Iterator:
        """Resolve a cycle-``cycle`` segment from its two children's
        tau-frequent cycle-``(cycle-1)`` reports; returns its string."""
        tau = self.tau_for_cycle(cycle - 1)
        table = self.reports.setdefault(cycle - 1, FrequencyTable())
        pieces: list[str] = []
        for child in self.hierarchy.children(cycle, segment):
            lo, hi = self.hierarchy.bounds(cycle - 1, child)
            if all(self.working[index] != -1 for index in range(lo, hi)):
                # Already learned (e.g. our own cycle-1 segment).
                pieces.append("".join(
                    "1" if self.working[index] else "0"
                    for index in range(lo, hi)))
                continue
            candidates = table.frequent(child, tau)
            if not candidates:
                self.fallback_segments += 1
                string = yield from self.query_segment(lo, hi)
            else:
                tree = build_tree(candidates)
                string, spent = yield from determine_via_peer(self, tree, lo)
                self.tree_queries += spent
            self.learn_string(lo, string)
            pieces.append(string)
        return "".join(pieces)
