"""Batched committee tallies for the scale path's byz-committee runs.

The baseline :class:`~repro.protocols.byz_committee.ByzCommitteeDownloadPeer`
keeps one ``(block, string) -> supporters`` tally *per peer*; every
report delivery touches one peer's dict.  At ``n = 10^5`` that is
``O(n)`` dicts updated ``O(blocks * committee)`` times each.  The
:class:`CommitteeBoard` stores the same information *per column*: one
column per distinct ``(block, string)`` report value, with the vote
counts of **all** peers for that column held in a
:class:`TierTally` — tier ``k`` is a single arbitrary-precision-int
bitmask of the peers holding at least ``k + 1`` votes.  Adding one
report for a whole span of peers is then ``t + 1`` big-int AND/ORs
(bytes-level vectorization, ~``n / 8`` bytes per operand) instead of
``n`` dict updates, and the peers newly reaching the ``t + 1``
acceptance threshold fall out as a bitmask.

Observational equivalence to the per-peer engine (pinned by the golden
battery with the scale path forced on):

* Dedup by *distinct sender* is per ``(column, sender)`` delivered-set
  bitmask — the same "count each committee member once" rule.
* A peer accepts a block exactly once (``accepted_mask`` filters), and
  acceptance fires at the exact delivery event where that peer's
  ``t + 1``-th distinct vote lands — the same event as baseline.
* Completion wake-ups go to newly-completed peers in ascending pid
  order, matching the baseline's per-destination delivery order; all
  other notifies in the baseline evaluate a false predicate and
  schedule nothing, so skipping them is invisible.
* Votes tallied for crashed/finished peers are never read again
  (their output, if any, was packed at finish time), mirroring the
  baseline where such deliveries evaporate.
"""

from __future__ import annotations

from typing import Optional

from repro.core.assignment import committee_for, committees_by_peer
from repro.core.segments import Segmentation
from repro.sim.peerstate import numpy_or_none
from repro.util.bitarrays import BitArray


def iter_bits(mask: int):
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


class TierTally:
    """Saturating per-peer vote counter over bitmask tiers.

    ``tiers[k]`` holds the peers with at least ``k + 1`` votes; counts
    saturate at ``threshold``.  :meth:`add` credits one vote to every
    peer in ``mask`` and returns the peers that *newly* reached the
    threshold — the batched equivalent of incrementing ``n`` individual
    counters and comparing each against ``threshold``.
    """

    __slots__ = ("threshold", "tiers")

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.tiers = [0] * threshold

    def add(self, mask: int) -> int:
        """Credit one vote to each peer in ``mask``; return the mask of
        peers whose count just reached the threshold."""
        tiers = self.tiers
        top = self.threshold - 1
        carry = mask
        for level in range(top):
            tier = tiers[level]
            tiers[level] = tier | carry
            carry &= tier
            if not carry:
                return 0
        newly = carry & ~tiers[top]
        tiers[top] |= carry
        return newly

    def count(self, pid: int) -> int:
        """Current (saturated) vote count of peer ``pid`` — the
        reference read-side used by the property tests."""
        return sum((tier >> pid) & 1 for tier in self.tiers)


class CommitteeBoard:
    """Shared column-major report tally for one byz-committee run."""

    def __init__(self, *, kernel, n: int, t: int, blocks: Segmentation,
                 committee_size: int, backend: str = "python") -> None:
        self.kernel = kernel
        self.n = n
        self.t = t
        self.threshold = t + 1
        self.blocks = blocks
        self.num_blocks = blocks.num_segments
        self.committee_size = committee_size
        self._np = numpy_or_none() if backend == "numpy" else None
        #: Registered receivers (the run's peers), indexed by pid; a
        #: Byzantine shell's inner honest peer registers too.
        self.receivers: list[Optional[object]] = [None] * n
        self._members = committees_by_peer(self.num_blocks, committee_size,
                                           n)
        self._committees = [
            frozenset(committee_for(block, committee_size, n))
            for block in range(self.num_blocks)]
        self._widths = [hi - lo for lo, hi in
                        (blocks.bounds(block)
                         for block in range(self.num_blocks))]
        # Column store: one column per distinct (block, string) value.
        self._cols: dict[tuple[int, str], int] = {}
        self._col_string: list[str] = []
        self._col_block: list[int] = []
        self._tally: list[TierTally] = []
        #: Per-(column, sender) delivered-destination bitmask: the
        #: distinct-sender dedup rule, span-at-a-time.
        self._seen: list[dict[int, int]] = []
        #: Per-block bitmask of peers that accepted the block.
        self._accepted_mask: list[int] = [0] * self.num_blocks
        np = self._np
        if np is not None:
            self._accepted_col = np.full((self.num_blocks, n), -1,
                                         dtype=np.int32)
            self._accepted_count = np.zeros(n, dtype=np.int64)
        else:
            from array import array
            self._accepted_col = [array("l", [-1]) * n
                                  for _ in range(self.num_blocks)]
            self._accepted_count = array("q", [0]) * n
        #: Interned outputs keyed by the tuple of accepted column ids —
        #: in a normal run every honest peer accepts the same columns,
        #: so the whole fleet shares one packed BitArray.
        self._outputs: dict[tuple, BitArray] = {}

    # -- wiring ------------------------------------------------------------

    def register(self, peer) -> None:
        self.receivers[peer.pid] = peer

    def blocks_of(self, pid: int) -> list[int]:
        """Blocks whose committee contains ``pid`` (ascending)."""
        return self._members.get(pid, [])

    # -- column management -------------------------------------------------

    def _col_id(self, block: int, string: str) -> int:
        col = self._cols.get((block, string))
        if col is None:
            col = len(self._col_string)
            self._cols[(block, string)] = col
            self._col_string.append(string)
            self._col_block.append(block)
            self._tally.append(TierTally(self.threshold))
            self._seen.append({})
        return col

    def _valid_col(self, block: int, sender: int,
                   string: str) -> Optional[int]:
        """Column for a report, or ``None`` for reports the baseline
        acceptance rule ignores (bad block, non-member, wrong width)."""
        if not 0 <= block < self.num_blocks:
            return None
        if sender not in self._committees[block]:
            return None
        if len(string) != self._widths[block]:
            return None
        return self._col_id(block, string)

    # -- delivery ----------------------------------------------------------

    def on_single(self, pid: int, message) -> None:
        """Per-delivery path: one report reached one peer (Byzantine
        proxy sends and non-groupable latencies land here)."""
        col = self._valid_col(message.block, message.sender, message.string)
        if col is None:
            return
        bit = 1 << pid
        seen = self._seen[col]
        prev = seen.get(message.sender, 0)
        if prev & bit:
            return  # duplicate from this sender: counted once already
        seen[message.sender] = prev | bit
        newly = self._tally[col].add(bit)
        if newly:
            # The receiving peer's own deliver() notify covers it, as
            # in the baseline — no extra notify from here.
            self._apply_acceptances(col, newly, notify=False)

    def deliver_span(self, message, lo: int, hi: int) -> None:
        """Bulk path: one report reached the whole pid span [lo, hi)."""
        col = self._valid_col(message.block, message.sender, message.string)
        if col is None:
            return
        span = (1 << hi) - (1 << lo)
        seen = self._seen[col]
        sender = message.sender
        prev = seen.get(sender, 0)
        mask = span & ~prev if prev & span else span
        seen[sender] = prev | span
        if not mask:
            return
        newly = self._tally[col].add(mask)
        if newly:
            self._apply_acceptances(col, newly, notify=True)

    def _apply_acceptances(self, col: int, newly: int,
                           notify: bool) -> None:
        block = self._col_block[col]
        pending = newly & ~self._accepted_mask[block]
        if not pending:
            return
        self._accepted_mask[block] |= pending
        np = self._np
        if np is not None:
            indices = self._mask_to_indices(pending)
            self._accepted_col[block][indices] = col
            counts = self._accepted_count
            counts[indices] += 1
            completed = indices[counts[indices] == self.num_blocks]
            completed = completed.tolist()
        else:
            row = self._accepted_col[block]
            counts = self._accepted_count
            completed = []
            for pid in iter_bits(pending):
                row[pid] = col
                counts[pid] += 1
                if counts[pid] == self.num_blocks:
                    completed.append(pid)
        if notify and completed:
            kernel = self.kernel
            receivers = self.receivers
            for pid in completed:  # ascending = baseline delivery order
                receiver = receivers[pid]
                if receiver is not None:
                    kernel.notify(receiver)

    def _mask_to_indices(self, mask: int):
        np = self._np
        nbytes = (self.n + 7) // 8
        raw = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
        return np.nonzero(np.unpackbits(raw, bitorder="little",
                                        count=self.n))[0]

    # -- the peer-facing read side ----------------------------------------

    def self_accept(self, pid: int, block: int, string: str) -> None:
        """A committee member accepts its own reading — unless a
        ``t+1``-supported report already settled the block (the
        baseline's ``accepted.setdefault`` semantics)."""
        bit = 1 << pid
        if self._accepted_mask[block] & bit:
            return
        col = self._col_id(block, string)
        self._accepted_mask[block] |= bit
        self._accepted_col[block][pid] = col
        self._accepted_count[pid] += 1

    def accepted_blocks(self, pid: int) -> int:
        """How many blocks ``pid`` has accepted so far."""
        return int(self._accepted_count[pid])

    def output_for(self, pid: int) -> BitArray:
        """Pack ``pid``'s accepted strings into the output array.

        Outputs are interned by accepted-column tuple: in a normal run
        every honest peer accepted identical columns and the whole
        fleet shares one :class:`BitArray` instead of ``n`` copies.
        """
        cols = tuple(int(self._accepted_col[block][pid])
                     for block in range(self.num_blocks))
        output = self._outputs.get(cols)
        if output is None:
            output = BitArray.from_segments(
                self._col_string[col] for col in cols)
            self._outputs[cols] = output
        return output
