"""Algorithm 2: deterministic asynchronous Download under ``t`` crashes.

The protocol runs in phases of three stages (Section 2.2 of the paper).
In phase ``p`` every peer:

1. **Stage 1** — queries the bits *assigned to it* for phase ``p`` that
   it does not know yet, and sends every other peer ``w`` a request for
   the unknown bits assigned to ``w``;
2. **Stage 2** — waits for responses from at least ``n - t`` peers
   (waiting for all ``n`` risks deadlock), then asks everyone about the
   peers it did *not* hear from (the *missing* peers), listing the
   exact indices it lacks;
3. **Stage 3** — waits for ``n - t`` of those missing-peer responses.
   Each response either carries a missing peer's bits (the responder
   heard from it) or says "me neither".  Unresolved bits simply flow
   into the next phase under the next phase's assignment.

Unknown bits shrink by a factor ``t / n`` per phase (Claim 4): a peer
misses at most ``t`` of the ``n`` per-phase owners.  After
:func:`~repro.core.bounds.crash_multi_phase_bound`-many phases the
residue is small enough to query directly; the peer then broadcasts the
complete array and terminates (which, per Claim 2, lets every waiting
peer terminate as well).

Assignment rule.  The paper reassigns a missing peer's bits "evenly
among all peers".  This implementation instantiates that rule with the
*base-n digit* assignment (:func:`repro.core.assignment.digit_owner`):
phase ``p`` assigns bit ``b`` to peer ``digit_p(b)``.  The rule is a
global function of ``(b, p, n)``, so all peers agree on every owner in
every phase — Claim 1 holds in its strongest form — and each digit
splits every surviving digit-pattern class evenly, giving exactly the
per-phase balance Claim 4 needs.  The trade-off (documented in
DESIGN.md) is digit exhaustion: after ``floor(log_n ell) + 1`` phases
the digits are used up and the remaining unknown bits (a
lower-order ``ell ** log_n(t)`` of them) are queried directly.

Theorem 2.13's *fast variant* (``CrashMultiFastDownloadPeer``) relaxes
the stage-3 wait: a peer stops waiting for responses about a missing
peer ``m`` the moment ``m``'s own (slow) stage-2 response arrives, so
long "bit-carrying" responses are only ever awaited for peers that
really crashed — cutting the time complexity's ``t * X / b`` term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.assignment import group_by_digit_owner
from repro.protocols.base import UNKNOWN, DownloadPeer
from repro.sim.messages import Message
from repro.sim.peer import SimEnv


@dataclass(frozen=True)
class DataRequest(Message):
    """Stage 1: "please send me these bits, which phase ``p`` assigns
    to you"."""

    phase: int
    indices: tuple[int, ...]


@dataclass(frozen=True)
class DataResponse(Message):
    """Answer to a :class:`DataRequest`.

    ``complete`` is True when the responder knew every requested bit —
    with the digit assignment this is always the case for honest
    responders in phases where digits are not exhausted, and the
    requester counts only complete responses toward "heard from".
    """

    phase: int
    values: dict[int, int]
    complete: bool


@dataclass(frozen=True)
class MissingRequest(Message):
    """Stage 2→3: "I did not hear from these peers; do you have these
    specific bits of theirs?"  ``needs`` maps missing peer -> indices."""

    phase: int
    needs: dict[int, tuple[int, ...]]

    def size_bits(self) -> int:
        from repro.sim.messages import FIELD_BITS, HEADER_BITS
        payload = sum(FIELD_BITS * (1 + len(indices))
                      for indices in self.needs.values())
        return HEADER_BITS + FIELD_BITS + payload


@dataclass(frozen=True)
class MissingResponse(Message):
    """Stage 3 answer: per missing peer, either its bits or "me neither"
    (encoded as None)."""

    phase: int
    found: dict[int, Optional[dict[int, int]]]

    def size_bits(self) -> int:
        from repro.sim.messages import FIELD_BITS, HEADER_BITS
        payload = 0
        for values in self.found.values():
            payload += FIELD_BITS  # the peer ID / me-neither marker
            if values:
                payload += len(values) * (FIELD_BITS + 1)
        return HEADER_BITS + FIELD_BITS + payload


@dataclass(frozen=True)
class FullArray(Message):
    """A terminating peer's parting gift: the entire learned input."""

    bits: str


class CrashMultiDownloadPeer(DownloadPeer):
    """Algorithm 2 peer (any crash fraction ``beta < 1``)."""

    protocol_name = "crash-multi"
    #: Fast variant flag (Theorem 2.13); see subclass.
    fast = False

    def __init__(self, pid: int, env: SimEnv,
                 direct_threshold: Optional[int] = None,
                 max_phases: Optional[int] = None) -> None:
        super().__init__(pid, env)
        self.direct_threshold = (direct_threshold
                                 if direct_threshold is not None
                                 else default_direct_threshold(
                                     env.ell, env.n, env.t))
        self.total_phases = (max_phases if max_phases is not None
                             else planned_phases(env.ell, env.n, env.t,
                                                 self.direct_threshold))
        self.phase = 0
        self.stage = 0
        self.full_received = False
        # Peers I heard (complete stage-1 responses) per phase; self
        # always counts.
        self.heard: dict[int, set[int]] = {}
        self._pending_data_requests: list[DataRequest] = []
        self._pending_missing_requests: list[MissingRequest] = []
        self.on_message(DataRequest, self._on_data_request)
        self.on_message(DataResponse, self._on_data_response)
        self.on_message(MissingRequest, self._on_missing_request)
        self.on_message(MissingResponse, self._on_missing_response)
        self.on_message(FullArray, self._on_full_array)

    # -- reactive handlers (run at delivery time, even mid-wait) -----------

    def _on_data_request(self, message: DataRequest) -> None:
        self._pending_data_requests.append(message)
        self._serve_data_requests()

    def _serve_data_requests(self) -> None:
        still_pending = []
        for request in self._pending_data_requests:
            # Serve once we are at least in stage 2 of the request's
            # phase (we have queried our own share by then), or once we
            # know the whole array.
            ready = ((self.phase, self.stage) >= (request.phase, 2)
                     or self.full_received or self.all_known())
            if not ready:
                still_pending.append(request)
                continue
            values = self.known_subset(request.indices)
            complete = len(values) == len(set(request.indices))
            self.send(request.sender, DataResponse(
                sender=self.pid, phase=request.phase, values=values,
                complete=complete))
        self._pending_data_requests = still_pending

    def _on_data_response(self, message: DataResponse) -> None:
        self.learn_many(message.values)
        if message.complete:
            self.heard.setdefault(message.phase, {self.pid}).add(
                message.sender)

    def _on_missing_request(self, message: MissingRequest) -> None:
        self._pending_missing_requests.append(message)
        self._serve_missing_requests()

    def _serve_missing_requests(self) -> None:
        still_pending = []
        for request in self._pending_missing_requests:
            ready = ((self.phase, self.stage) >= (request.phase, 3)
                     or self.full_received or self.all_known())
            if not ready:
                still_pending.append(request)
                continue
            found: dict[int, Optional[dict[int, int]]] = {}
            for missing_peer, indices in request.needs.items():
                values = self.known_subset(indices)
                if len(values) == len(set(indices)):
                    found[missing_peer] = values
                else:
                    found[missing_peer] = None  # "me neither"
            self.send(request.sender, MissingResponse(
                sender=self.pid, phase=request.phase, found=found))
        self._pending_missing_requests = still_pending

    def _on_missing_response(self, message: MissingResponse) -> None:
        for values in message.found.values():
            if values:
                self.learn_many(values)

    def _on_full_array(self, message: FullArray) -> None:
        self.learn_string(0, message.bits)
        self.full_received = True

    # -- stage bookkeeping ----------------------------------------------------

    def _enter(self, phase: int, stage: int) -> None:
        self.phase, self.stage = phase, stage
        self.note_phase(f"p{phase}/s{stage}")
        self._serve_data_requests()
        self._serve_missing_requests()

    # -- the protocol body -------------------------------------------------------

    def body(self) -> Iterator:
        for phase in range(1, self.total_phases + 1):
            self.begin_cycle()
            if self.full_received:
                break

            # ---- stage 1: query own share, request everyone else's ----
            self._enter(phase, 1)
            unknown = self.unknown_indices()
            owners = group_by_digit_owner(unknown, phase, self.n)
            values = yield from self.query_bits(owners.get(self.pid, []))
            self.learn_many(values)
            for destination in self.others:
                self.send(destination, DataRequest(
                    sender=self.pid, phase=phase,
                    indices=tuple(owners.get(destination, ()))))

            # ---- stage 2: hear from n - t peers ----
            self._enter(phase, 2)
            needed = self.n - self.t  # includes self
            yield self.wait_until(
                lambda p=phase, k=needed: (
                    self.full_received
                    or len(self.heard.get(p, {self.pid})) >= k),
                f"phase {phase}: stage-1 responses from {needed - 1} peers")
            if self.full_received:
                break
            heard = self.heard.setdefault(phase, {self.pid})
            missing = [pid for pid in self.env.peer_ids if pid not in heard]
            # One grouping pass over the residue replaces a full
            # unknown-indices rescan per missing peer.
            lacked_by_owner = group_by_digit_owner(
                self.unknown_indices(), phase, self.n)
            needs = {}
            for missing_peer in missing:
                lacked = lacked_by_owner.get(missing_peer)
                if lacked:
                    needs[missing_peer] = tuple(lacked)
            for destination in self.others:
                self.send(destination, MissingRequest(
                    sender=self.pid, phase=phase, needs=needs))

            # ---- stage 3: resolve missing peers or collect n - t shrugs ----
            self._enter(phase, 3)
            yield self.wait_until(
                lambda p=phase, k=needed, nd=needs: self._stage3_done(p, k, nd),
                f"phase {phase}: missing-peer responses")
            if self.full_received:
                break

        # ---- completion: query the residue, share everything, stop ----
        if not self.full_received:
            self._enter(self.total_phases + 1, 1)
            residue = yield from self.query_bits(self.unknown_indices())
            self.learn_many(residue)
        bits = "".join("1" if bit == 1 else "0" for bit in self.working)
        self.broadcast(FullArray(sender=self.pid, bits=bits))
        self.finish_with_working()

    def _stage3_done(self, phase: int, needed: int,
                     needs: dict[int, tuple[int, ...]]) -> bool:
        if self.full_received:
            return True
        responses = self.inbox.senders(
            MissingResponse, lambda msg, p=phase: msg.phase == p)
        if len(responses) >= needed - 1:  # self is the needed-th shrug
            return True
        if self.fast:
            # Thm 2.13: each missing peer either resolved through a
            # helper/by its own late response (its bits are learned) or
            # is still genuinely unresolved.
            return all(
                all(self.working[index] != UNKNOWN for index in indices)
                for indices in needs.values())
        return False


class CrashMultiFastDownloadPeer(CrashMultiDownloadPeer):
    """Theorem 2.13's modification: stop waiting for long responses
    about a missing peer once its bits arrive by any route."""

    protocol_name = "crash-multi-fast"
    fast = True


def default_direct_threshold(ell: int, n: int, t: int) -> int:
    """Residue size below which peers stop phasing and query directly.

    ``ceil(ell / (n - t))`` keeps the direct-query tail within the same
    order as the phased cost (so Q <= 2 * ell / (n - t) + n); the
    ``n`` floor avoids pathological phasing over tiny inputs.
    """
    return max(n, math.ceil(ell / max(1, n - t)))


def planned_phases(ell: int, n: int, t: int, threshold: int) -> int:
    """Number of three-stage phases every honest peer runs.

    Phases continue while the worst-case unknown residue
    ``ell * (t/n)**p`` still exceeds ``threshold``, capped at digit
    exhaustion (``n**p >= ell`` means phase ``p + 1`` has no spread
    left).  All peers compute this from globals, so they agree.
    """
    if t == 0:
        return 1 if ell > threshold else 0
    phases = 0
    remaining = ell
    while remaining > threshold and n ** phases < ell:
        phases += 1
        remaining = math.ceil(remaining * t / n)
    return phases
