"""Theorem 3.4: deterministic asynchronous Download for ``beta < 1/2``.

The committee protocol from [3], adapted to asynchrony exactly as the
paper prescribes.  The input is carved into blocks; each block gets a
round-robin *committee* of ``2t + 1`` peers.  Committee members query
their block and broadcast its value; everyone else accepts a block the
moment ``t + 1`` *distinct* peers of its committee have reported the
same string — at least one of any ``t + 1`` committee members is
honest, so an accepted string is correct, and the ``>= t + 1`` honest
members of every committee guarantee eventual acceptance no matter how
messages are delayed (honest peers can be slowed, never forged).

The paper forms a committee per *bit*; this implementation generalizes
to per-*block* committees (``block_size`` bits, default 1 = the paper's
protocol) because the committee-membership pattern — hence the query
complexity ``ell * (2t + 1) / n`` — is independent of the block size,
while larger blocks shrink the simulated message count by that factor.
Benches use blocks; the test suite also runs the exact per-bit variant.

Query complexity per peer: each peer sits on at most
``ceil(blocks * (2t+1) / n)`` committees and queries one block for
each, i.e. ``ceil(ell * (2t + 1) / n)`` bits — Theorem 3.4's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.assignment import committee_for
from repro.core.segments import Segmentation
from repro.protocols.base import DownloadPeer
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message
from repro.sim.peer import SimEnv


@dataclass(frozen=True)
class CommitteeReport(Message):
    """A committee member's reading of its block."""

    block: int
    string: str


class ByzCommitteeDownloadPeer(DownloadPeer):
    """Deterministic committee download; requires ``2t < n``."""

    protocol_name = "byz-committee"

    def __init__(self, pid: int, env: SimEnv, block_size: int = 1,
                 give_up_time: float = None) -> None:
        super().__init__(pid, env)
        if 2 * env.t >= env.n:
            raise ConfigurationError(
                f"the committee protocol needs 2t < n, got t={env.t}, "
                f"n={env.n} (Theorem 3.1: impossible deterministically)")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        #: Application-layer escape hatch (None = pure protocol): if
        #: the trusted-source assumption is violated (an equivocating
        #: oracle feed), "t+1 identical reports" may never materialize;
        #: after this much virtual time the peer queries the unresolved
        #: blocks itself.  See Peer.wait_with_deadline for the caveat.
        self.give_up_time = give_up_time
        self.blocks = Segmentation(env.ell,
                                   max(1, math.ceil(env.ell / block_size)))
        self.committee_size = 2 * env.t + 1
        self.accepted: dict[int, str] = {}
        #: Incremental tally: ``(block, string) -> distinct committee
        #: senders`` seen so far.  Equivalent to rescanning the inbox on
        #: every report (every counted report passed the same filters
        #: when it arrived), but each report is processed once instead
        #: of once per later report.
        self._support: dict[tuple[int, str], set[int]] = {}
        self._committee_cache: dict[int, frozenset[int]] = {}
        #: Scale path: the run-shared column-major tally
        #: (:class:`~repro.protocols.board.CommitteeBoard`) replaces
        #: the per-peer ``accepted``/``_support`` dicts — same
        #: acceptance rule, applied per span of peers instead of per
        #: peer.  The deadline variant keeps the per-peer engine (its
        #: leftover-query path reads the working array).
        self._board = None
        if env.scale is not None and give_up_time is None:
            self._board = env.scale.committee_board(self)
            self.on_message(CommitteeReport, self._on_report_scale)
        else:
            self.on_message(CommitteeReport, self._on_report)

    def _committee(self, block: int) -> frozenset[int]:
        committee = self._committee_cache.get(block)
        if committee is None:
            committee = frozenset(
                committee_for(block, self.committee_size, self.n))
            self._committee_cache[block] = committee
        return committee

    # -- acceptance rule ---------------------------------------------------

    def _on_report(self, message: CommitteeReport) -> None:
        block = message.block
        if block in self.accepted:
            return
        if not 0 <= block < self.blocks.num_segments:
            return  # Byzantine garbage: no such block
        if message.sender not in self._committee(block):
            return  # only committee members may vouch for a block
        lo, hi = self.blocks.bounds(block)
        if len(message.string) != hi - lo:
            return  # wrong length can never be the block's value
        supporters = self._support.setdefault((block, message.string), set())
        supporters.add(message.sender)
        if len(supporters) >= self.t + 1:
            # t + 1 identical reports include at least one honest one.
            self.accepted[block] = message.string
            self.learn_string(lo, message.string)

    def _on_report_scale(self, message: CommitteeReport) -> None:
        # Per-destination fallback on the scale path (Byzantine runs,
        # where the corrupting network proxy forces singleton sends):
        # feed the shared board one vote at a time.  The bulk path
        # (``deliver_span``) bypasses this handler entirely.
        self._board.on_single(self.pid, message)

    # -- body --------------------------------------------------------------------

    def body(self) -> Iterator:
        if self._board is not None:
            yield from self._body_scale()
            return
        self.begin_cycle()
        self.note_phase("report")
        my_blocks = [block for block in range(self.blocks.num_segments)
                     if self.pid in committee_for(block, self.committee_size,
                                                  self.n)]
        # One batched request for all committee duties: the committees
        # a peer serves on are known up front, so their queries can be
        # issued in parallel (the paper's committees operate in
        # parallel up to the n/(2t+1) concurrency it notes).
        wanted: list[int] = []
        for block in my_blocks:
            lo, hi = self.blocks.bounds(block)
            wanted.extend(range(lo, hi))
        values = yield from self.query_bits(wanted)
        self.learn_many(values)
        for block in my_blocks:
            lo, hi = self.blocks.bounds(block)
            string = "".join("1" if values[index] else "0"
                             for index in range(lo, hi))
            self.accepted.setdefault(block, string)
            self.broadcast(CommitteeReport(sender=self.pid, block=block,
                                           string=string))

        self.begin_cycle()
        self.note_phase("collect")
        done = lambda: len(self.accepted) == self.blocks.num_segments  # noqa: E731
        if self.give_up_time is None:
            yield self.wait_until(done,
                                  "t+1 matching reports for every block")
        else:
            yield self.wait_with_deadline(
                done, self.give_up_time,
                "t+1 matching reports for every block (with deadline)")
            if not done():
                # The source broke its trust contract (possible only in
                # the oracle application); read the leftovers ourselves.
                leftovers: list[int] = []
                for block in range(self.blocks.num_segments):
                    if block not in self.accepted:
                        lo, hi = self.blocks.bounds(block)
                        leftovers.extend(range(lo, hi))
                values = yield from self.query_bits(leftovers)
                self.learn_many(values)
        self.finish_with_working()

    def _body_scale(self) -> Iterator:
        """The same protocol driven through the shared board.

        Step-for-step identical to :meth:`body` in every externally
        observable way (queries issued, messages sent, wait points,
        virtual timestamps); only the tally bookkeeping moves from
        per-peer dicts to the run-shared column store, and the output
        is assembled from accepted block strings instead of a per-peer
        working array (the strings are the same bits).
        """
        board = self._board
        self.begin_cycle()
        self.note_phase("report")
        my_blocks = board.blocks_of(self.pid)
        wanted: list[int] = []
        for block in my_blocks:
            lo, hi = self.blocks.bounds(block)
            wanted.extend(range(lo, hi))
        values = yield from self.query_bits(wanted)
        for block in my_blocks:
            lo, hi = self.blocks.bounds(block)
            string = "".join("1" if values[index] else "0"
                             for index in range(lo, hi))
            board.self_accept(self.pid, block, string)
            self.broadcast(CommitteeReport(sender=self.pid, block=block,
                                           string=string))

        self.begin_cycle()
        self.note_phase("collect")
        num_blocks = self.blocks.num_segments
        yield self.wait_until(
            lambda: board.accepted_blocks(self.pid) == num_blocks,
            "t+1 matching reports for every block")
        self.finish(board.output_for(self.pid))
