"""Name-indexed protocol registry used by benches and examples.

Each entry couples a peer class with the regime it is valid in, so
harness code can sweep "every protocol that tolerates this fault setup"
without hard-coding the list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.protocols.balanced import BalancedDownloadPeer
from repro.protocols.base import DownloadPeer
from repro.protocols.byz_committee import ByzCommitteeDownloadPeer
from repro.protocols.byz_multi_cycle import ByzMultiCycleDownloadPeer
from repro.protocols.byz_two_cycle import ByzTwoCycleDownloadPeer
from repro.protocols.crash_multi import (
    CrashMultiDownloadPeer,
    CrashMultiFastDownloadPeer,
)
from repro.protocols.crash_one import CrashOneDownloadPeer
from repro.protocols.multisource import (
    CrossValidateDownloadPeer,
    CrossValidateEscalateDownloadPeer,
)
from repro.protocols.naive import NaiveDownloadPeer
from repro.protocols.one_round import OneRoundDownloadPeer


@dataclass(frozen=True)
class ProtocolEntry:
    """One protocol with its validity envelope."""

    name: str
    peer_class: type
    fault_model: str  # "none", "crash", "byzantine"
    randomized: bool
    max_crash_fraction: float  # largest beta the protocol tolerates
    max_byzantine_fraction: float
    description: str

    def supports(self, *, fault_model: str, beta: float) -> bool:
        """True when the protocol is claimed correct for this setup."""
        if fault_model == "none":
            return True
        if fault_model == "crash":
            # Byzantine-tolerant protocols also survive crashes.
            limit = max(self.max_crash_fraction,
                        self.max_byzantine_fraction)
            return beta <= limit
        if fault_model == "byzantine":
            return beta <= self.max_byzantine_fraction
        raise ValueError(f"unknown fault model {fault_model!r}")

    def factory(self, **params) -> Callable:
        """Peer factory with protocol parameters bound."""
        return self.peer_class.factory(**params)


_REGISTRY: dict[str, ProtocolEntry] = {}


def _register(entry: ProtocolEntry) -> None:
    _REGISTRY[entry.name] = entry


_register(ProtocolEntry(
    name="naive", peer_class=NaiveDownloadPeer, fault_model="byzantine",
    randomized=False, max_crash_fraction=0.999, max_byzantine_fraction=0.999,
    description="every peer queries all ell bits (correct for any beta < 1)"))
_register(ProtocolEntry(
    name="balanced", peer_class=BalancedDownloadPeer, fault_model="none",
    randomized=False, max_crash_fraction=0.0, max_byzantine_fraction=0.0,
    description="fault-free round-robin sharing (Q = ell/n)"))
_register(ProtocolEntry(
    name="crash-one", peer_class=CrashOneDownloadPeer, fault_model="crash",
    randomized=False, max_crash_fraction=0.0, max_byzantine_fraction=0.0,
    description="Algorithm 1: two-phase protocol for a single crash"))
_register(ProtocolEntry(
    name="crash-multi", peer_class=CrashMultiDownloadPeer,
    fault_model="crash", randomized=False,
    max_crash_fraction=0.999, max_byzantine_fraction=0.0,
    description="Algorithm 2: phased protocol, any crash fraction"))
_register(ProtocolEntry(
    name="crash-multi-fast", peer_class=CrashMultiFastDownloadPeer,
    fault_model="crash", randomized=False,
    max_crash_fraction=0.999, max_byzantine_fraction=0.0,
    description="Theorem 2.13's time-improved Algorithm 2"))
_register(ProtocolEntry(
    name="one-round", peer_class=OneRoundDownloadPeer, fault_model="crash",
    randomized=True, max_crash_fraction=0.999, max_byzantine_fraction=0.0,
    description="single-exchange download; correct but query-hungry "
                "(the companion paper's single-round regime)"))
_register(ProtocolEntry(
    name="byz-committee", peer_class=ByzCommitteeDownloadPeer,
    fault_model="byzantine", randomized=False,
    max_crash_fraction=0.499, max_byzantine_fraction=0.499,
    description="Theorem 3.4: deterministic committees, beta < 1/2"))
_register(ProtocolEntry(
    name="byz-two-cycle", peer_class=ByzTwoCycleDownloadPeer,
    fault_model="byzantine", randomized=True,
    max_crash_fraction=0.499, max_byzantine_fraction=0.499,
    description="Protocol 4: 2-cycle randomized sampling + decision trees"))
_register(ProtocolEntry(
    name="byz-multi-cycle", peer_class=ByzMultiCycleDownloadPeer,
    fault_model="byzantine", randomized=True,
    max_crash_fraction=0.499, max_byzantine_fraction=0.499,
    description="Theorem 3.12: doubling-segment multi-cycle download"))
# The multi-source protocols are per-peer independent (no peer-to-peer
# messages), so like naive they tolerate any peer-fault fraction below
# 1; their interesting adversary is the faulty *source* set.
_register(ProtocolEntry(
    name="cross-validate", peer_class=CrossValidateDownloadPeer,
    fault_model="byzantine", randomized=False,
    max_crash_fraction=0.999, max_byzantine_fraction=0.999,
    description="query q of k sources per digit, majority/threshold "
                "decode (tolerates f = (q-1)/2 faulty sources)"))
_register(ProtocolEntry(
    name="cross-validate-escalate",
    peer_class=CrossValidateEscalateDownloadPeer,
    fault_model="byzantine", randomized=False,
    max_crash_fraction=0.999, max_byzantine_fraction=0.999,
    description="query f+1 sources, escalate to 2f+1 with majority "
                "decode on disagreement"))


def get(name: str) -> ProtocolEntry:
    """Look up a protocol by name (raises KeyError with suggestions)."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown protocol {name!r}; known: {known}")
    return _REGISTRY[name]


def all_protocols() -> list[ProtocolEntry]:
    """All registered protocols, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def protocols_for(*, fault_model: str, beta: float,
                  include_naive: bool = True) -> list[ProtocolEntry]:
    """Protocols claimed correct under a fault setup."""
    entries = [entry for entry in all_protocols()
               if entry.supports(fault_model=fault_model, beta=beta)]
    if not include_naive:
        entries = [entry for entry in entries if entry.name != "naive"]
    return entries
