"""Algorithm 1: deterministic asynchronous Download with one crash.

The paper's warm-up protocol (Section 2.1): two phases of three stages.

Phase 1 — every peer queries its round-robin share and *pushes* it to
everyone (stage 1); waits for shares from ``n - 1`` peers, then asks
everyone about the single peer it may have missed (stage 2); waits for
``n - 1`` answers, which either carry the missing peer's share or say
"me neither" (stage 3).  The Overlap Lemma + Lemma 2.1 give the key
structural fact: *all* peers that still lack bits after stage 3 lack
the bits of the *same* missing peer ``q``.

Phase 2 — peers that know everything enter *completion mode* and push
the whole array; the rest share ``q``'s bits, reassigned evenly among
the ``n - 1`` peers other than ``q`` (reassigning to ``q`` itself would
strand a sub-share if ``q`` really crashed), and resolve stragglers
with the same probe machinery.

Two deliberate deviations from the paper's prose, both on the safe
side (documented in DESIGN.md):

- reassignment targets are ``N \\ {q}`` rather than "all peers" — with
  ``q`` crashed, a share assigned to ``q`` would be covered by nobody;
- a peer that has learned the full array broadcasts it before
  terminating (same insurance Algorithm 2 uses, Claim 2), which
  subsumes the completion-mode push and removes every residual
  phase-2 straggler case.

Query complexity: ``ceil(ell / n)`` in phase 1 plus at most
``ceil(ell / n / (n - 1))`` in phase 2 — Theorem 2.3's
``ell/n + ell/n^2`` (up to ceilings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.assignment import distribute_evenly, round_robin_indices
from repro.protocols.base import DownloadPeer
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message
from repro.sim.peer import SimEnv


@dataclass(frozen=True)
class ShareValues(Message):
    """Stage-1 push: the sender's queried share for this phase."""

    phase: int
    values: dict[int, int]


@dataclass(frozen=True)
class Probe(Message):
    """Stage-2 question: "did you hear from ``missing``?" (None = I
    heard everyone and only participate so others can count me)."""

    phase: int
    missing: Optional[int]


@dataclass(frozen=True)
class ProbeReply(Message):
    """Stage-3 answer: the missing peer's share, or None = "me neither"."""

    phase: int
    about: Optional[int]
    values: Optional[dict[int, int]]


@dataclass(frozen=True)
class FullBits(Message):
    """Terminating peer's full-array broadcast (completion mode)."""

    bits: str


class CrashOneDownloadPeer(DownloadPeer):
    """Algorithm 1 peer; requires ``t <= 1``."""

    protocol_name = "crash-one"

    def __init__(self, pid: int, env: SimEnv) -> None:
        super().__init__(pid, env)
        if env.t > 1:
            raise ConfigurationError(
                f"Algorithm 1 tolerates one crash; got t={env.t} "
                f"(use CrashMultiDownloadPeer)")
        if env.n < 3:
            raise ConfigurationError("Algorithm 1 needs n >= 3")
        self.phase = 0
        self.stage = 0
        self.full_received = False
        # Phase-2 reassignment of the missing peer's share; stays empty
        # for completion-mode peers (they answer probes trivially and
        # their FullBits broadcast supersedes share exchange).
        self._reassignment: dict[int, int] = {}
        self._pending_probes: list[Probe] = []
        self.on_message(ShareValues, self._on_share)
        self.on_message(Probe, self._on_probe)
        self.on_message(ProbeReply, self._on_probe_reply)
        self.on_message(FullBits, self._on_full)

    # -- reactive handlers ---------------------------------------------------

    def _on_share(self, message: ShareValues) -> None:
        self.learn_many(message.values)
        self._serve_probes()

    def _on_probe(self, message: Probe) -> None:
        self._pending_probes.append(message)
        self._serve_probes()

    def _serve_probes(self) -> None:
        still_pending = []
        for probe in self._pending_probes:
            # The paper: delay the reply until own stage-2 wait of that
            # phase is done (we are then in stage >= 3 of the phase).
            if (self.phase, self.stage) < (probe.phase, 3) \
                    and not (self.full_received or self.all_known()):
                still_pending.append(probe)
                continue
            values: Optional[dict[int, int]] = None
            if probe.missing is None:
                values = {}
            elif probe.missing in self._heard(probe.phase):
                share = self._phase_share(probe.phase, probe.missing)
                values = self.known_subset(share)
            self.send(probe.sender, ProbeReply(
                sender=self.pid, phase=probe.phase, about=probe.missing,
                values=values))
        self._pending_probes = still_pending

    def _on_probe_reply(self, message: ProbeReply) -> None:
        if message.values:
            self.learn_many(message.values)

    def _on_full(self, message: FullBits) -> None:
        self.learn_string(0, message.bits)
        self.full_received = True

    # -- helpers ------------------------------------------------------------------

    def _heard(self, phase: int) -> set[int]:
        """Peers whose stage-1 share for ``phase`` has arrived (+ self)."""
        senders = self.inbox.senders(
            ShareValues, lambda msg, p=phase: msg.phase == p)
        senders.add(self.pid)
        return senders

    def _phase_share(self, phase: int, pid: int) -> list[int]:
        """Indices assigned to ``pid`` in ``phase`` (phase 2 needs the
        recorded reassignment)."""
        if phase == 1:
            return list(round_robin_indices(pid, self.ell, self.n))
        return [index for index, owner in self._reassignment.items()
                if owner == pid]

    # -- protocol body -----------------------------------------------------------

    def body(self) -> Iterator:
        # ---------------- phase 1 ----------------
        self.begin_cycle()
        self.phase, self.stage = 1, 1
        mine = round_robin_indices(self.pid, self.ell, self.n)
        values = yield from self.query_bits(mine)
        self.learn_many(values)
        self.broadcast(ShareValues(sender=self.pid, phase=1, values=values))

        self.phase, self.stage = 1, 2
        yield self.wait_until(
            lambda: self.full_received or len(self._heard(1)) >= self.n - 1,
            "phase 1: shares from n - 1 peers")
        missing = self._single_missing(1)
        self.broadcast(Probe(sender=self.pid, phase=1, missing=missing))

        self.phase, self.stage = 1, 3
        self._serve_probes()
        yield self.wait_until(
            lambda: (self.full_received or self.all_known()
                     or self._probe_replies(1) >= self.n - 2),
            "phase 1: probe replies")

        # ---------------- phase 2 ----------------
        self.begin_cycle()
        # Lemma 2.1: every peer still lacking bits lacks the bits of
        # the same peer q; q is recoverable from our own missing slot.
        if not (self.all_known() or self.full_received):
            lacked_owner = missing
            q_share = list(round_robin_indices(lacked_owner, self.ell, self.n))
            helpers = [pid for pid in self.env.peer_ids if pid != lacked_owner]
            dealt = distribute_evenly(q_share, len(helpers))
            self._reassignment = {index: helpers[slot]
                                  for index, slot in dealt.items()}

            self.phase, self.stage = 2, 1
            my_slice = [index for index, owner in self._reassignment.items()
                        if owner == self.pid
                        and self.working[index] == -1]
            values = yield from self.query_bits(my_slice)
            self.learn_many(values)
            known_slice = self.known_subset(
                index for index, owner in self._reassignment.items()
                if owner == self.pid)
            self.broadcast(ShareValues(sender=self.pid, phase=2,
                                       values=known_slice))

            self.phase, self.stage = 2, 2
            yield self.wait_until(
                lambda: (self.full_received or self.all_known()
                         or len(self._heard(2)) >= self.n - 1),
                "phase 2: shares from n - 1 peers")

            if not (self.all_known() or self.full_received):
                missing2 = self._single_missing(2)
                self.broadcast(Probe(sender=self.pid, phase=2,
                                     missing=missing2))
                self.phase, self.stage = 2, 3
                self._serve_probes()
                # All remaining unknowns are covered either by a probe
                # reply, by the missing peer's own late share, or by a
                # terminating peer's FullBits (Theorem 2.3's argument);
                # waiting for full knowledge is deadlock-free.
                yield self.wait_until(
                    lambda: self.full_received or self.all_known(),
                    "phase 2: final resolution")

        # ---------------- completion ----------------
        self.phase, self.stage = 3, 1
        self._serve_probes()
        bits = "".join("1" if bit == 1 else "0" for bit in self.working)
        self.broadcast(FullBits(sender=self.pid, bits=bits))
        self.finish_with_working()

    def _single_missing(self, phase: int) -> Optional[int]:
        """The one peer not heard in ``phase`` (None if all heard)."""
        heard = self._heard(phase)
        absent = [pid for pid in self.env.peer_ids if pid not in heard]
        return absent[0] if absent else None

    def _probe_replies(self, phase: int) -> int:
        return len(self.inbox.senders(
            ProbeReply, lambda msg, p=phase: msg.phase == p))
