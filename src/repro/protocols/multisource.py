"""Cross-validation Download protocols for multi-source runs.

With ``k`` external sources of which up to ``f`` may be faulty
(:mod:`repro.sim.sourceset`), a single query no longer establishes a
bit.  These protocols buy back correctness by querying ``q`` sources
per digit and decoding the vote multiset (:mod:`repro.protocols.
decode`) — the Q-vs-trust tradeoff: ``q`` times the query bits for
tolerance of ``f = (q - 1) // 2`` faulty sources.

- :class:`CrossValidateDownloadPeer` (``cross-validate``) — query a
  fixed ``q`` sources per chunk and decode every position by strict
  majority (or an explicit threshold).  A position decodes as soon as
  one value holds a majority *of q*, so slow or withholding endpoints
  cost nothing once enough honest answers arrived.
- :class:`CrossValidateEscalateDownloadPeer`
  (``cross-validate-escalate``) — the optimistic variant: query only
  ``f + 1`` sources first (any agreement among ``f + 1`` includes at
  least one honest answer **only if all f+1 agree**); on unanimity
  accept, on disagreement emit a ``source_disagreement`` event and
  escalate the chunk to ``2f + 1`` sources with majority decode.
  Fault-free cost is ``(f + 1) * ell`` instead of ``(2f + 1) * ell``.

Both are per-peer independent (no peer-to-peer messages), so like the
naive protocol they tolerate any peer-fault fraction below 1 — the
interesting adversary here sits behind the source API, not among the
peers.  Source rotation (peer ``p`` queries endpoints ``(p + j) mod
k``) spreads load across the set instead of hammering endpoint 0.

Termination under source faults that defeat the decoder (more faulty
sources than ``q`` covers) is still guaranteed: once every queried
endpoint has answered (withheld answers are compelled at quiescence),
undecided positions fall back deterministically to the lowest-numbered
responding source — the run then *terminates incorrectly*, which the
harness reports as such, rather than deadlocking.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.protocols.base import DownloadPeer
from repro.protocols.decode import (
    majority_decode,
    majority_threshold,
    threshold_decode,
)
from repro.sim.peer import SimEnv

#: Upper bound on bits per source request (mirrors the naive peer).
_CHUNK = 4096

_DECODE_RULES = ("majority", "threshold")


class CrossValidateDownloadPeer(DownloadPeer):
    """Query ``q`` sources per chunk; decode positions by vote.

    Parameters:
        q: sources queried per chunk (default: all ``k`` available).
        decode: ``"majority"`` (strict majority of q) or
            ``"threshold"`` (unique value with >= ``threshold`` votes).
        threshold: vote count for ``decode="threshold"`` (default: the
            majority threshold ``q // 2 + 1``).
    """

    protocol_name = "cross-validate"
    peer_to_peer = False  # source-only: shardable (see execution.sharding)

    def __init__(self, pid: int, env: SimEnv,
                 q: Optional[int] = None, decode: str = "majority",
                 threshold: Optional[int] = None) -> None:
        super().__init__(pid, env)
        if decode not in _DECODE_RULES:
            raise ValueError(f"decode must be one of {_DECODE_RULES}, "
                             f"got {decode!r}")
        k = self.source_count
        self.q = q if q is not None else k
        if not 1 <= self.q <= k:
            raise ValueError(f"q={self.q} must be in [1, k={k}]")
        self.decode = decode
        self.threshold = (threshold if threshold is not None
                          else majority_threshold(self.q))
        if not 1 <= self.threshold <= self.q:
            raise ValueError(f"threshold={self.threshold} must be in "
                             f"[1, q={self.q}]")

    def _decode(self, votes: list[int]) -> Optional[int]:
        if self.decode == "majority":
            return majority_decode(votes, self.q)
        return threshold_decode(votes, self.threshold)

    def _note_disagreement(self, index: int, votes: list[int]) -> None:
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.emit("source_disagreement", {
                "t": self.env.kernel.now, "peer": self.pid,
                "index": index, "votes": list(votes)})

    def _chunk_sources(self, chunk_no: int) -> list[int]:
        """The ``q`` endpoints this peer queries for chunk ``chunk_no``
        — rotation by peer id spreads load over the whole set."""
        k = self.source_count
        return [(self.pid + chunk_no + j) % k for j in range(self.q)]

    def _resolve_chunk(self, lo: int, hi: int,
                       chunk_no: int) -> Iterator:
        """Query ``q`` sources for ``[lo, hi)``; learn decoded bits.

        Decodes eagerly: the chunk completes as soon as every position
        has a decode, even with responses still in flight (a withheld
        endpoint cannot stall a ``q >= 2f + 1`` honest majority).
        """
        pending = {self.start_query(range(lo, hi), source=sid): sid
                   for sid in self._chunk_sources(chunk_no)}
        votes: dict[int, list[int]] = {index: []
                                       for index in range(lo, hi)}
        fallback: dict[int, tuple[int, int]] = {}
        decided: dict[int, int] = {}
        while True:
            ready = [rid for rid in pending if self.response_ready(rid)]
            for rid in ready:
                sid = pending.pop(rid)
                for index, bit in self.take_response(rid).items():
                    votes[index].append(bit)
                    best = fallback.get(index)
                    if best is None or sid < best[0]:
                        fallback[index] = (sid, bit)
            if ready:
                for index in range(lo, hi):
                    if index in decided:
                        continue
                    bit = self._decode(votes[index])
                    if bit is not None:
                        decided[index] = bit
            if len(decided) == hi - lo or not pending:
                break
            yield self.wait_until(
                lambda: any(rid in self._source_responses
                            for rid in pending),
                f"votes for chunk [{lo}, {hi})")
        for index in range(lo, hi):
            if index in decided:
                continue
            # Undecided with all answers in: the sources defeated the
            # decode rule.  Record the disagreement and take the
            # lowest-numbered responder's bit so the run terminates
            # (incorrectly, which the harness will report).
            self._note_disagreement(index, votes[index])
            decided[index] = fallback[index][1]
        self.learn_many(decided)

    def body(self) -> Iterator:
        self.begin_cycle()
        for chunk_no, lo in enumerate(range(0, self.ell, _CHUNK)):
            hi = min(self.ell, lo + _CHUNK)
            yield from self._resolve_chunk(lo, hi, chunk_no)
        self.finish_with_working()


class CrossValidateEscalateDownloadPeer(CrossValidateDownloadPeer):
    """Optimistic cross-validation: ``f + 1`` sources, escalate on
    disagreement to ``2f + 1`` with majority decode.

    Parameters:
        f: source-fault budget (default 0: a single trusted source).
    """

    protocol_name = "cross-validate-escalate"

    def __init__(self, pid: int, env: SimEnv, f: int = 0) -> None:
        k = getattr(env.source, "k", 1)
        if f < 0:
            raise ValueError(f"f must be >= 0, got {f}")
        if 2 * f + 1 > k:
            raise ValueError(f"escalation needs 2f + 1 <= k sources, "
                             f"got f={f}, k={k}")
        super().__init__(pid, env, q=2 * f + 1, decode="majority")
        self.f = f

    def _escalation_sources(self, chunk_no: int) -> tuple[list[int],
                                                          list[int]]:
        """(optimistic f+1 endpoints, escalation-only f endpoints)."""
        chosen = self._chunk_sources(chunk_no)
        return chosen[:self.f + 1], chosen[self.f + 1:]

    def _resolve_chunk(self, lo: int, hi: int,
                       chunk_no: int) -> Iterator:
        first, extra = self._escalation_sources(chunk_no)
        pending = {self.start_query(range(lo, hi), source=sid): sid
                   for sid in first}
        votes: dict[int, list[int]] = {index: []
                                       for index in range(lo, hi)}
        fallback: dict[int, tuple[int, int]] = {}

        def absorb() -> None:
            for rid in [rid for rid in pending
                        if self.response_ready(rid)]:
                sid = pending.pop(rid)
                for index, bit in self.take_response(rid).items():
                    votes[index].append(bit)
                    best = fallback.get(index)
                    if best is None or sid < best[0]:
                        fallback[index] = (sid, bit)

        while pending:
            yield self.wait_until(
                lambda: any(rid in self._source_responses
                            for rid in pending),
                f"optimistic votes for chunk [{lo}, {hi})")
            absorb()
        disagreeing = [index for index in range(lo, hi)
                       if threshold_decode(votes[index],
                                           len(first)) is None]
        if not disagreeing:
            self.learn_many({index: votes[index][0]
                             for index in range(lo, hi)})
            return
        for index in disagreeing:
            self._note_disagreement(index, votes[index])
        self.note_phase(f"escalate:[{lo},{hi})")
        # Escalate: the remaining f endpoints bring the chunk to the
        # full 2f + 1 votes; decode by strict majority of 2f + 1.
        pending = {self.start_query(range(lo, hi), source=sid): sid
                   for sid in extra}
        while pending:
            yield self.wait_until(
                lambda: any(rid in self._source_responses
                            for rid in pending),
                f"escalated votes for chunk [{lo}, {hi})")
            absorb()
        decided = {}
        for index in range(lo, hi):
            bit = majority_decode(votes[index], self.q)
            if bit is None:
                self._note_disagreement(index, votes[index])
                bit = fallback[index][1]
            decided[index] = bit
        self.learn_many(decided)
