"""Fault-free balanced Download: the ``ell / n`` ideal.

With no failures the Download problem is trivially query-balanced
(Section 1.2): share the index space round-robin, everyone queries
their own slice, broadcasts it, and waits for all ``n - 1`` other
slices.  Query complexity is ``ceil(ell / n)``, message complexity
``O(n^2)`` (slices travel in one message here; with bounded message
size ``b`` the count scales by ``ceil(ell / (n b))``), and time is a
constant number of delays.

This protocol deadlocks if even one peer crashes — which is exactly
the point: it is the ideal the fault-tolerant protocols are measured
against, and the test suite demonstrates the deadlock under a single
crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.assignment import round_robin_indices
from repro.protocols.base import DownloadPeer
from repro.sim.messages import Message


@dataclass(frozen=True)
class ShareMessage(Message):
    """One peer's queried slice: bit index -> value."""

    values: dict[int, int]


class BalancedDownloadPeer(DownloadPeer):
    """Round-robin sharing; correct only in the fault-free case."""

    protocol_name = "balanced"

    def body(self) -> Iterator:
        self.begin_cycle()
        mine = round_robin_indices(self.pid, self.ell, self.n)
        values = yield from self.query_bits(mine)
        self.learn_many(values)
        self.broadcast(ShareMessage(sender=self.pid, values=values))

        self.begin_cycle()
        yield self.wait_for_messages(ShareMessage, self.n - 1,
                                     description="all other slices")
        for message in self.inbox.of_type(ShareMessage):
            self.learn_many(message.values)
        self.finish_with_working()
