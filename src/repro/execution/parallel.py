"""Process-parallel experiment execution with fault tolerance.

Every experiment in this repo is embarrassingly parallel: a spec's
repeats are independent runs seeded by
:meth:`~repro.experiments.ExperimentSpec.seed_for`, and a sweep's
points are independent specs.  :class:`ParallelRunner` fans both out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
results **bit-for-bit identical** to the serial path:

- each task is a pure function of ``(spec, repeat)`` — workers rebuild
  the adversary and peer factory from the spec, so no live simulator
  state crosses the process boundary;
- per-repeat records are gathered by index, and aggregation always
  happens in repeat order in the parent, so scheduling order is
  irrelevant;
- ``workers=1`` runs in-process through the *same* task function.

Because tasks are pure, re-running one is always safe — which is what
the resilience layer leans on:

- every task runs under a :class:`~repro.execution.retry.RetryPolicy`
  (attempt budget, deterministic-jitter backoff, per-attempt wall-clock
  watchdog);
- a broken process pool (worker killed, OOM, segfault) rebuilds the
  pool and resubmits **only the lost tasks** — completed results are
  never discarded;
- a task that fails every attempt becomes a structured
  :class:`~repro.execution.retry.TaskFailure` in the results
  (``on_error="record"``) or re-raises (``on_error="raise"``);
- a :class:`~repro.execution.journal.SweepJournal` checkpoints each
  completed ``(spec, repeat)`` as it lands, so an interrupted sweep
  resumes instead of restarting.

The generic :func:`run_tasks` helper underneath is also used by the
benchmark harness (:mod:`benchmarks.support`), whose payloads carry
live adversary/factory objects rather than specs.  There the pickle
round-trip doubles as per-task isolation: serial and parallel modes
both hand each task a pristine copy, so ``workers=1`` and
``workers=N`` see identical state.  Payloads that cannot be pickled
fall back to direct serial calls (with a warning).
"""

from __future__ import annotations

import dataclasses
import pickle
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import (TYPE_CHECKING, Callable, Iterable, Optional, Sequence)

from repro.execution.cache import ResultCache
from repro.execution.chaos import ChaosPlan
from repro.execution.journal import SweepJournal
from repro.execution.retry import RetryPolicy, TaskFailure, watchdog
from repro.obs.telemetry import counter as obs_counter
from repro.obs.telemetry import event as obs_event
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments import ExperimentOutcome, ExperimentSpec

__all__ = ["ParallelRunner", "run_tasks"]


def _spec_repeat_task(payload):
    """Worker body: one repeat of one spec (module-level ⇒ picklable)."""
    spec, repeat = payload
    # Imported lazily: repro.experiments imports this package.
    from repro.experiments import execute_repeat
    return execute_repeat(spec, repeat)


def _run_attempt(blob: bytes, index: int, attempt: int,
                 timeout: Optional[float],
                 chaos: Optional[ChaosPlan], *, in_pool: bool):
    """One attempt of one task: chaos, watchdog, unpickle, call.

    Runs in a pool worker's main thread (``in_pool=True``) or in the
    parent on the serial path.  The chaos injection and the unpickle
    both sit *inside* the watchdog window, so a stalled injection or a
    pathological payload is interrupted like any stalled task.
    """
    with watchdog(timeout):
        if chaos is not None:
            chaos.apply(index, attempt, in_pool=in_pool)
        fn, payload = pickle.loads(blob)
        return fn(payload)


class _TaskState:
    """Book-keeping for one task across attempts and pool rebuilds."""

    __slots__ = ("index", "seed", "attempts")

    def __init__(self, index: int, seed: int) -> None:
        self.index = index
        self.seed = seed
        self.attempts = 0


def run_tasks(fn: Callable, payloads: Iterable, *, workers: int = 1,
              isolate: bool = True, policy: Optional[RetryPolicy] = None,
              on_error: str = "raise",
              on_result: Optional[Callable[[int, object], None]] = None,
              task_seeds: Optional[Sequence[int]] = None,
              chaos: Optional[ChaosPlan] = None) -> list:
    """Order-preserving, fault-tolerant map of ``fn`` over ``payloads``.

    ``workers > 1`` distributes over a process pool; ``workers = 1``
    runs in-process.  With ``isolate=True`` (the default) serial mode
    passes each payload through a pickle round-trip, mirroring the copy
    a pool worker would receive — mutable payload state (e.g. a shared
    adversary object) then cannot leak between tasks in either mode,
    which is what makes serial and parallel results identical.

    Every task runs under ``policy`` (default: the stock
    :class:`~repro.execution.retry.RetryPolicy` — 3 attempts, no
    timeout): failed attempts are retried after a deterministic-jitter
    backoff, a per-attempt wall-clock ``task_timeout`` is enforced by a
    watchdog, and a broken process pool is rebuilt with only the lost
    tasks resubmitted (each casualty is charged one attempt).  A task
    that exhausts its budget re-raises its last error when
    ``on_error="raise"`` (the default), or yields a
    :class:`~repro.execution.retry.TaskFailure` in its result slot when
    ``on_error="record"``.

    ``on_result(index, result)`` is invoked in the parent as each task
    completes (completion order under a pool) — the journalling hook.
    ``task_seeds`` supplies per-task seeds for the backoff jitter
    (default: the task index).  ``chaos`` injects deterministic faults
    for the chaos battery; leave it ``None`` outside tests.

    ``fn`` must be a module-level callable.  If ``fn`` or any payload
    cannot be pickled, everything runs serially on the originals (the
    only mode such payloads support) and a ``RuntimeWarning`` is
    emitted.
    """
    check_positive("workers", workers)
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', "
                         f"got {on_error!r}")
    policy = RetryPolicy() if policy is None else policy
    payloads = list(payloads)
    if not payloads:
        return []
    # Live-progress feed: a ProgressTracker (or any telemetry backend)
    # learns the batch size up front and each outcome as it lands.  All
    # emissions happen in the parent process, after outcomes are
    # decided, so they cannot perturb results.
    obs_counter("tasks_total", len(payloads))
    seeds = (list(task_seeds) if task_seeds is not None
             else list(range(len(payloads))))
    if len(seeds) != len(payloads):
        raise ValueError(f"task_seeds has {len(seeds)} entries for "
                         f"{len(payloads)} payloads")

    serial = workers == 1 or len(payloads) == 1
    if serial and not isolate:
        blobs = None  # direct calls: no pickling needed at all
    else:
        try:
            blobs = [pickle.dumps((fn, payload)) for payload in payloads]
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            warnings.warn(
                f"run_tasks: payloads are not picklable ({exc}); falling "
                f"back to serial execution without per-task isolation",
                RuntimeWarning, stacklevel=2)
            blobs = None
            serial = True

    if serial:
        return _run_serial(fn, payloads, blobs, seeds, policy,
                           on_error, on_result, chaos)
    return _run_pool(blobs, seeds, policy, workers,
                     on_error, on_result, chaos)


def _fail(state: _TaskState, exc: Exception, on_error: str) -> TaskFailure:
    """Out of attempts: raise (strict) or record (graceful)."""
    if on_error == "raise":
        raise exc
    return TaskFailure.from_exception(f"task-{state.index}", exc,
                                      state.attempts)


def _run_serial(fn, payloads, blobs, seeds, policy, on_error, on_result,
                chaos) -> list:
    """In-process path: same attempt loop, payload order preserved."""
    results: list = [None] * len(payloads)
    for index, payload in enumerate(payloads):
        state = _TaskState(index, seeds[index])
        while True:
            state.attempts += 1
            try:
                if blobs is None:
                    # Unpicklable payloads: no isolation copy possible,
                    # but retries and the watchdog still apply.
                    with watchdog(policy.task_timeout):
                        if chaos is not None:
                            chaos.apply(index, state.attempts,
                                        in_pool=False)
                        value = fn(payload)
                else:
                    value = _run_attempt(blobs[index], index,
                                         state.attempts,
                                         policy.task_timeout, chaos,
                                         in_pool=False)
            except Exception as exc:
                if state.attempts >= policy.max_attempts:
                    results[index] = _fail(state, exc, on_error)
                    obs_counter("tasks_failed")
                    obs_event("task_failed", index=index,
                              error=type(exc).__name__,
                              attempts=state.attempts)
                    break
                obs_counter("tasks_retried")
                obs_event("task_retried", index=index,
                          attempt=state.attempts + 1)
                time.sleep(policy.delay_before(state.attempts + 1,
                                               task_seed=state.seed))
                continue
            results[index] = value
            obs_counter("tasks_done")
            obs_event("task_done", index=index, attempts=state.attempts)
            if on_result is not None:
                on_result(index, value)
            break
    return results


def _run_pool(blobs, seeds, policy, workers, on_error, on_result,
              chaos) -> list:
    """Pool path: retries in-pool, rebuild-and-resubmit on breakage.

    A ``BrokenProcessPool`` (worker killed/segfaulted/OOMed) marks the
    whole executor unusable: completed results are kept, every
    unfinished task is charged one attempt (the killer is among them
    and must not loop forever), and a fresh pool is built for just the
    survivors.  Termination is inductive — every rebuild consumes at
    least one attempt from a finite total budget.
    """
    total = len(blobs)
    results: list = [None] * total
    finished = [False] * total
    states = {index: _TaskState(index, seeds[index])
              for index in range(total)}
    todo = list(range(total))

    def record_success(index: int, value) -> None:
        results[index] = value
        finished[index] = True
        obs_counter("tasks_done")
        obs_event("task_done", index=index,
                  attempts=states[index].attempts)
        if on_result is not None:
            on_result(index, value)

    def record_exhausted(index: int, exc: Exception) -> None:
        results[index] = _fail(states[index], exc, on_error)
        finished[index] = True
        obs_counter("tasks_failed")
        obs_event("task_failed", index=index, error=type(exc).__name__,
                  attempts=states[index].attempts)

    while todo:
        resubmit: list[int] = []
        with ProcessPoolExecutor(
                max_workers=min(workers, len(todo))) as pool:
            inflight = {}
            broken = False

            def submit(index: int) -> bool:
                """Charge an attempt and submit; False once the pool
                is broken (the caller routes the task to resubmit)."""
                state = states[index]
                state.attempts += 1
                try:
                    future = pool.submit(_run_attempt, blobs[index],
                                         index, state.attempts,
                                         policy.task_timeout, chaos,
                                         in_pool=True)
                except BrokenProcessPool:
                    return False
                inflight[future] = index
                return True

            for position, index in enumerate(todo):
                if not submit(index):
                    broken = True
                    resubmit.extend(todo[position:])
                    break
            todo = []
            while inflight and not broken:
                done, _ = wait(set(inflight),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    index = inflight.pop(future)
                    state = states[index]
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        resubmit.append(index)
                    except Exception as exc:
                        if state.attempts >= policy.max_attempts:
                            record_exhausted(index, exc)
                        elif broken:
                            resubmit.append(index)
                        else:
                            obs_counter("tasks_retried")
                            obs_event("task_retried", index=index,
                                      attempt=state.attempts + 1)
                            time.sleep(policy.delay_before(
                                state.attempts + 1,
                                task_seed=state.seed))
                            if not submit(index):
                                broken = True
                                resubmit.append(index)
                    else:
                        record_success(index, value)
            if broken:
                # Drain the casualties: every remaining future fails
                # fast with BrokenProcessPool; keep any stragglers that
                # actually finished before the breakage.
                for future, index in inflight.items():
                    try:
                        record_success(index, future.result())
                    except Exception:
                        resubmit.append(index)
                inflight.clear()
        for index in resubmit:
            # A lost task was charged its submission's attempt; out of
            # budget means the breakage wins as its failure cause.
            if states[index].attempts >= policy.max_attempts:
                record_exhausted(index, BrokenProcessPool(
                    f"task {index} lost to a broken process pool "
                    f"{states[index].attempts} time(s)"))
            else:
                todo.append(index)
        todo.sort()
    assert all(finished), "engine lost track of a task"
    return results


class ParallelRunner:
    """Executes :class:`~repro.experiments.ExperimentSpec` workloads.

    Args:
        workers: process count; ``1`` means in-process serial.
        cache: optional :class:`ResultCache`; hits skip computation
            entirely, misses are stored after aggregation (outcomes
            containing failures are never cached).
        journal: optional :class:`SweepJournal`; completed repeats are
            checkpointed as they land and replayed on the next
            ``run_many``, so an interrupted sweep resumes instead of
            restarting.
        policy: :class:`~repro.execution.retry.RetryPolicy` for every
            task (default: 3 attempts, no timeout).
        strict: ``True`` re-raises the first task error that survives
            its retry budget; ``False`` (the default) degrades
            gracefully — failed repeats become
            :class:`~repro.execution.retry.TaskFailure` records on the
            outcome (``failed_runs``/``failures``).
        chaos: deterministic fault injection plan (tests only).

    The runner is stateless between calls (cache/journal stats live on
    those objects), so one instance can serve many runs/sweeps.
    """

    def __init__(self, *, workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 journal: Optional[SweepJournal] = None,
                 policy: Optional[RetryPolicy] = None,
                 strict: bool = False,
                 chaos: Optional[ChaosPlan] = None) -> None:
        check_positive("workers", workers)
        self.workers = workers
        self.cache = cache
        self.journal = journal
        self.policy = policy
        self.strict = strict
        self.chaos = chaos

    def run(self, spec: "ExperimentSpec") -> "ExperimentOutcome":
        """All repeats of one spec, aggregated."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence["ExperimentSpec"]
                 ) -> list["ExperimentOutcome"]:
        """Many specs at once; repeats of *all* uncached specs share one
        pool, so a sweep saturates the workers even when each point has
        few repeats.  Output order matches input order."""
        from repro.experiments import aggregate_outcome
        specs = list(specs)
        outcomes: list = [None] * len(specs)
        pending: list[int] = []
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                outcomes[index] = hit
                obs_counter("cache_hits")
                obs_event("cache_hit", index=index)
            else:
                pending.append(index)
        # Checkpointed repeats resume from the journal; only the rest run.
        completed: dict = {}
        if self.journal is not None and pending:
            replayed = self.journal.replay()
            for index in pending:
                key = self.journal.key_for(specs[index])
                for repeat in range(specs[index].repeats):
                    record = replayed.get((key, repeat))
                    if record is not None:
                        completed[(index, repeat)] = record
        tasks = [(index, repeat) for index in pending
                 for repeat in range(specs[index].repeats)
                 if (index, repeat) not in completed]

        def checkpoint(position: int, record) -> None:
            index, repeat = tasks[position]
            self.journal.record(specs[index], repeat, record)

        records = run_tasks(
            _spec_repeat_task,
            [(specs[index], repeat) for index, repeat in tasks],
            workers=self.workers,
            policy=self.policy,
            on_error="raise" if self.strict else "record",
            on_result=checkpoint if self.journal is not None else None,
            task_seeds=[specs[index].seed_for(repeat)
                        for index, repeat in tasks],
            chaos=self.chaos)
        for task, record in zip(tasks, records):
            completed[task] = record
        for index in pending:
            spec = specs[index]
            rows = []
            for repeat in range(spec.repeats):
                entry = completed[(index, repeat)]
                if isinstance(entry, TaskFailure):
                    entry = dataclasses.replace(entry,
                                                task=f"repeat-{repeat}")
                rows.append(entry)
            outcome = aggregate_outcome(spec, rows)
            # Failures are environmental, not content: caching them
            # would serve a transient fault forever.
            if self.cache is not None and outcome.failed_runs == 0:
                self.cache.put(spec, outcome)
            outcomes[index] = outcome
        return outcomes

    def sweep(self, spec: "ExperimentSpec", *, axis: str,
              values: Iterable) -> list["ExperimentOutcome"]:
        """One outcome per axis value (see
        :func:`repro.experiments.sweep_points`)."""
        from repro.experiments import sweep_points
        return self.run_many(sweep_points(spec, axis=axis, values=values))
