"""Process-parallel experiment execution.

Every experiment in this repo is embarrassingly parallel: a spec's
repeats are independent runs seeded by
:meth:`~repro.experiments.ExperimentSpec.seed_for`, and a sweep's
points are independent specs.  :class:`ParallelRunner` fans both out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
results **bit-for-bit identical** to the serial path:

- each task is a pure function of ``(spec, repeat)`` — workers rebuild
  the adversary and peer factory from the spec, so no live simulator
  state crosses the process boundary;
- per-repeat records are gathered by index, and aggregation always
  happens in repeat order in the parent, so scheduling order is
  irrelevant;
- ``workers=1`` runs in-process through the *same* task function.

The generic :func:`run_tasks` helper underneath is also used by the
benchmark harness (:mod:`benchmarks.support`), whose payloads carry
live adversary/factory objects rather than specs.  There the pickle
round-trip doubles as per-task isolation: serial and parallel modes
both hand each task a pristine copy, so ``workers=1`` and
``workers=N`` see identical state.  Payloads that cannot be pickled
fall back to direct serial calls.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.execution.cache import ResultCache
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments import ExperimentOutcome, ExperimentSpec

__all__ = ["ParallelRunner", "run_tasks"]


def _spec_repeat_task(payload):
    """Worker body: one repeat of one spec (module-level ⇒ picklable)."""
    spec, repeat = payload
    # Imported lazily: repro.experiments imports this package.
    from repro.experiments import execute_repeat
    return execute_repeat(spec, repeat)


def run_tasks(fn: Callable, payloads: Iterable, *, workers: int = 1,
              isolate: bool = True) -> list:
    """Order-preserving map of ``fn`` over ``payloads``.

    ``workers > 1`` distributes over a process pool; ``workers = 1``
    runs in-process.  With ``isolate=True`` (the default) serial mode
    passes each payload through a pickle round-trip, mirroring the copy
    a pool worker would receive — mutable payload state (e.g. a shared
    adversary object) then cannot leak between tasks in either mode,
    which is what makes serial and parallel results identical.

    ``fn`` must be a module-level callable.  If ``fn`` or any payload
    cannot be pickled, everything runs serially on the originals (the
    only mode such payloads support).
    """
    check_positive("workers", workers)
    payloads = list(payloads)
    if not payloads:
        return []
    try:
        blobs = [pickle.dumps((fn, payload)) for payload in payloads]
    except Exception:
        return [fn(payload) for payload in payloads]
    if workers == 1 or len(payloads) == 1:
        if not isolate:
            return [fn(payload) for payload in payloads]
        return [_apply(blob) for blob in blobs]
    results: list = [None] * len(payloads)
    with ProcessPoolExecutor(max_workers=min(workers,
                                             len(payloads))) as pool:
        futures = {pool.submit(fn, payload): index
                   for index, payload in enumerate(payloads)}
        for future in as_completed(futures):
            results[futures[future]] = future.result()
    return results


def _apply(blob: bytes):
    """Run one pickled ``(fn, payload)`` pair — the serial twin of a
    pool worker's unpickle-then-call."""
    fn, payload = pickle.loads(blob)
    return fn(payload)


class ParallelRunner:
    """Executes :class:`~repro.experiments.ExperimentSpec` workloads.

    Args:
        workers: process count; ``1`` means in-process serial.
        cache: optional :class:`ResultCache`; hits skip computation
            entirely, misses are stored after aggregation.

    The runner is stateless between calls (cache stats live on the
    cache object), so one instance can serve many runs/sweeps.
    """

    def __init__(self, *, workers: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        check_positive("workers", workers)
        self.workers = workers
        self.cache = cache

    def run(self, spec: "ExperimentSpec") -> "ExperimentOutcome":
        """All repeats of one spec, aggregated."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence["ExperimentSpec"]
                 ) -> list["ExperimentOutcome"]:
        """Many specs at once; repeats of *all* uncached specs share one
        pool, so a sweep saturates the workers even when each point has
        few repeats.  Output order matches input order."""
        from repro.experiments import aggregate_outcome
        specs = list(specs)
        outcomes: list = [None] * len(specs)
        pending: list[int] = []
        for index, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                outcomes[index] = hit
            else:
                pending.append(index)
        tasks = [(index, repeat) for index in pending
                 for repeat in range(specs[index].repeats)]
        records = run_tasks(
            _spec_repeat_task,
            [(specs[index], repeat) for index, repeat in tasks],
            workers=self.workers)
        by_task = {task: record for task, record in zip(tasks, records)}
        for index in pending:
            spec = specs[index]
            outcome = aggregate_outcome(
                spec, [by_task[(index, repeat)]
                       for repeat in range(spec.repeats)])
            if self.cache is not None:
                self.cache.put(spec, outcome)
            outcomes[index] = outcome
        return outcomes

    def sweep(self, spec: "ExperimentSpec", *, axis: str,
              values: Iterable) -> list["ExperimentOutcome"]:
        """One outcome per axis value (see
        :func:`repro.experiments.sweep_points`)."""
        from repro.experiments import sweep_points
        return self.run_many(sweep_points(spec, axis=axis, values=values))
