"""Retry, timeout, and failure-record policy for the execution engine.

The engine's tasks are pure functions of their payload (seeds are
derived from spec identity), so re-running one is always safe.  That
makes a retry layer free of semantic risk: a transient worker fault —
an ``OSError`` from a saturated machine, a killed worker process, a
stall past the wall-clock budget — is retried with exponential backoff,
and only a fault that survives every attempt surfaces, either as a
raised exception (strict mode) or as a structured :class:`TaskFailure`
record carried in the results (graceful mode).

Determinism is preserved end to end: the backoff *jitter* is not drawn
from a shared RNG but derived from the task's own seed via
:func:`repro.util.rng.derive_seed`, so two runs of the same sweep retry
on the same schedule, and a retried task produces bit-identical results
to one that succeeded first try (the task function never sees the
attempt number).

The per-task wall-clock timeout is a :func:`watchdog` alarm raised
*inside* the process running the task (a pool worker's main thread, or
the parent on the serial path), so a stalled task is interrupted where
it runs and the pool stays healthy.  On platforms without ``SIGALRM``
or off the main thread the watchdog degrades to a no-op (best effort).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.obs.telemetry import counter as obs_counter
from repro.util.rng import derive_seed
from repro.util.validation import check_positive

__all__ = [
    "NO_RETRY",
    "RetryPolicy",
    "TaskFailure",
    "TaskTimeout",
    "watchdog",
]


class TaskTimeout(Exception):
    """A task exceeded its :attr:`RetryPolicy.task_timeout` budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine reacts to a failing or stalled task.

    Args:
        max_attempts: total tries per task (1 = no retries).
        base_delay: backoff before the first retry, in seconds.
        backoff: multiplier applied per further retry.
        max_delay: ceiling on any single backoff sleep.
        task_timeout: per-attempt wall-clock budget in seconds
            (``None`` disables the watchdog).
        jitter: fraction of each backoff sleep that is randomized
            *deterministically* from the task seed (0 disables).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    task_timeout: Optional[float] = None
    jitter: float = 0.5

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        for name in ("base_delay", "backoff", "max_delay", "jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, "
                                 f"got {getattr(self, name)!r}")
        if self.jitter > 1:
            raise ValueError(f"jitter must be <= 1, got {self.jitter!r}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive or None, "
                             f"got {self.task_timeout!r}")

    def delay_before(self, attempt: int, *, task_seed: int = 0) -> float:
        """Backoff sleep before retry number ``attempt`` (2, 3, ...).

        Exponential in the attempt number, capped at ``max_delay``,
        shortened by up to ``jitter`` of itself using a uniform value
        derived from ``(task_seed, attempt)`` — deterministic, so a
        re-run of the same sweep retries on the same schedule.
        """
        raw = min(self.max_delay,
                  self.base_delay * self.backoff ** max(0, attempt - 2))
        if raw <= 0:
            return 0.0
        if self.jitter > 0:
            unit = derive_seed(task_seed, f"retry#{attempt}") / float(1 << 64)
            raw *= 1.0 - self.jitter * unit
        # Telemetry: total backoff seconds slept by the engine.  Only
        # the parent process ever computes delays, so the counter is
        # never emitted from (and lost in) a pool worker.
        obs_counter("retry_backoff_s", raw)
        return raw


#: Behaviour-neutral policy: one attempt, no watchdog, no sleeps.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that failed every attempt.

    JSON-safe and frozen, so it can ride inside an
    :class:`~repro.experiments.ExperimentOutcome`, round-trip through
    the persistence layer, and compare by value in tests.
    """

    task: str        #: stable label, e.g. ``"repeat-3"`` or ``"task-17"``
    error_type: str  #: exception class name, e.g. ``"OSError"``
    message: str     #: ``str(exception)`` (truncated)
    attempts: int    #: attempts consumed before giving up

    @classmethod
    def from_exception(cls, task: str, exc: BaseException,
                       attempts: int) -> "TaskFailure":
        return cls(task=task, error_type=type(exc).__name__,
                   message=str(exc)[:500], attempts=attempts)

    def __str__(self) -> str:
        return (f"{self.task}: {self.error_type}({self.message}) "
                f"after {self.attempts} attempt(s)")


@contextmanager
def watchdog(seconds: Optional[float]):
    """Raise :class:`TaskTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM``/``setitimer`` so it interrupts the
    running task in place; applies only on POSIX main threads (the
    serial engine path and pool workers' main threads both qualify).
    Elsewhere — or with ``seconds`` falsy — it is a no-op.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()):
        yield  # best effort: no alarm available here
        return

    def _alarm(signum, frame):
        raise TaskTimeout(f"task exceeded its {seconds:g}s "
                          f"wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
