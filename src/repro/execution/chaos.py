"""Deterministic fault injection for the execution engine.

The paper's protocols are *tested under* adversarial faults; this
module turns the same idea on the harness itself: a :class:`ChaosPlan`
injects crash, transient-error, and stall faults into the engine's own
task execution, deterministically (keyed by task index and attempt
number, never by wall clock or RNG), so the chaos battery in
``tests/integration/test_chaos_engine.py`` can assert **bit-identical
outcomes with and without faults**.

Fault classes, mirroring what the resilience layer claims to survive:

- **Worker kill** (:attr:`ChaosPlan.kill_on`): the first attempt of a
  listed task hard-kills its process with ``os._exit``.  In a pool
  this breaks the ``ProcessPoolExecutor`` (the engine rebuilds it and
  resubmits the lost tasks); on the serial path it raises
  :class:`WorkerKilled` instead — exiting would kill the caller.
- **Transient errors** (:attr:`ChaosPlan.transient_until`): a listed
  task raises ``OSError`` on every attempt up to the given number,
  then succeeds — exercising the retry/backoff path.
- **Stalls** (:attr:`ChaosPlan.stall_on`): the first attempt of a
  listed task sleeps :attr:`ChaosPlan.stall_seconds` before running —
  paired with a :class:`~repro.execution.retry.RetryPolicy` timeout it
  exercises the watchdog.

File-level injectors (:func:`corrupt_file`, :func:`truncate_file`,
:func:`drop_journal_lines`) damage journal/cache artifacts between
runs, exercising the corruption-is-a-miss recovery paths.

Everything here is test machinery: plans are plain frozen dataclasses
(picklable, so they travel into pool workers) and nothing in this
module is imported by the engine unless a plan is passed in.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

__all__ = [
    "ChaosPlan",
    "WorkerKilled",
    "corrupt_file",
    "drop_journal_lines",
    "truncate_file",
]

PathLike = Union[str, Path]


class WorkerKilled(Exception):
    """Serial-path stand-in for a hard worker kill (still retryable)."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic fault schedule over the tasks of one engine call.

    Task indices refer to positions in the payload list handed to
    :func:`repro.execution.run_tasks`; attempts are 1-based.
    """

    #: Tasks whose *first* attempt kills the hosting worker process.
    kill_on: Tuple[int, ...] = ()
    #: ``(task_index, attempts)`` pairs: the task raises ``OSError``
    #: while its attempt number is <= ``attempts``.
    transient_until: Tuple[Tuple[int, int], ...] = ()
    #: Tasks whose first attempt sleeps ``stall_seconds`` first.
    stall_on: Tuple[int, ...] = ()
    stall_seconds: float = 1.0

    def apply(self, index: int, attempt: int, *, in_pool: bool) -> None:
        """Inject this plan's faults for ``(task, attempt)``, if any.

        Called by the engine inside the watchdog window, in the process
        that is about to run the task.
        """
        if index in self.kill_on and attempt == 1:
            if in_pool:
                os._exit(86)  # hard kill: no cleanup, pool breaks
            raise WorkerKilled(
                f"chaos: worker killed on task {index} (serial stand-in)")
        for task, attempts in self.transient_until:
            if task == index and attempt <= attempts:
                raise OSError(
                    f"chaos: transient fault on task {index} "
                    f"attempt {attempt}")
        if index in self.stall_on and attempt == 1:
            time.sleep(self.stall_seconds)


# -- file-level injectors ----------------------------------------------------


def corrupt_file(path: PathLike,
                 garbage: bytes = b"\x00\xffnot json{") -> None:
    """Overwrite ``path`` with bytes that parse as nothing."""
    Path(path).write_bytes(garbage)


def truncate_file(path: PathLike, keep_bytes: int) -> None:
    """Cut ``path`` down to its first ``keep_bytes`` bytes."""
    target = Path(path)
    target.write_bytes(target.read_bytes()[:keep_bytes])


def drop_journal_lines(path: PathLike, indices,
                       replacement: str = None) -> int:
    """Remove (or corrupt) the given line numbers of a JSONL journal.

    ``replacement=None`` deletes the lines (simulating an interrupted
    sweep that never journalled them); a string replaces them in place
    (simulating a torn or corrupted append).  Returns the number of
    lines affected.
    """
    target = Path(path)
    lines = target.read_text(encoding="utf-8").splitlines()
    doomed = {index for index in indices if 0 <= index < len(lines)}
    kept = []
    for number, line in enumerate(lines):
        if number in doomed:
            if replacement is not None:
                kept.append(replacement)
            continue
        kept.append(line)
    target.write_text("".join(line + "\n" for line in kept),
                      encoding="utf-8")
    return len(doomed)
