"""Fault-tolerant parallel experiment execution with a result cache.

Public surface:

- :class:`ParallelRunner` — fans experiment repeats and sweep points
  over a process pool; ``workers=1`` is the in-process serial path and
  produces bit-identical outcomes.  Wraps every task in a
  :class:`RetryPolicy`, rebuilds broken pools, optionally checkpoints
  into a :class:`SweepJournal`, and degrades failed repeats into
  :class:`TaskFailure` records unless ``strict=True``.
- :class:`ResultCache` / :class:`CacheStats` — content-addressed
  on-disk outcome cache keyed by spec identity plus the
  :data:`CODE_VERSION` salt.
- :class:`SweepJournal` / :class:`JournalStats` — append-only JSONL
  checkpoint of completed ``(spec, repeat)`` records; replayed on
  restart so interrupted sweeps resume instead of restarting.
- :class:`RetryPolicy` / :class:`TaskFailure` / :class:`TaskTimeout` —
  the retry/timeout layer (deterministic-jitter backoff, per-attempt
  watchdog, structured failure records).
- :class:`ChaosPlan` — deterministic fault injection for the chaos
  battery (worker kills, transient errors, stalls); test-only.
- :func:`run_tasks` — the generic order-preserving parallel map the
  benchmark harness reuses.

Most callers never touch this package directly: pass ``workers=`` /
``cache=`` / ``journal=`` / ``policy=`` to
:func:`repro.experiments.run_experiment` or
:func:`repro.experiments.sweep_experiment` instead.
"""

from repro.execution.cache import (
    CODE_VERSION,
    CacheStats,
    ResultCache,
    canonical_json,
    default_cache_dir,
    resolve_cache,
    spec_cache_key,
)
from repro.execution.chaos import ChaosPlan, WorkerKilled
from repro.execution.journal import (
    JournalStats,
    SweepJournal,
    resolve_journal,
)
from repro.execution.parallel import ParallelRunner, run_tasks
from repro.execution.sharding import merge_results, run_sharded, shard_pids
from repro.execution.retry import (
    NO_RETRY,
    RetryPolicy,
    TaskFailure,
    TaskTimeout,
    watchdog,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "ChaosPlan",
    "JournalStats",
    "NO_RETRY",
    "ParallelRunner",
    "ResultCache",
    "RetryPolicy",
    "SweepJournal",
    "TaskFailure",
    "TaskTimeout",
    "WorkerKilled",
    "canonical_json",
    "default_cache_dir",
    "merge_results",
    "resolve_cache",
    "resolve_journal",
    "run_sharded",
    "run_tasks",
    "shard_pids",
    "spec_cache_key",
    "watchdog",
]
