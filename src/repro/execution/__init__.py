"""Parallel experiment execution with a deterministic result cache.

Public surface:

- :class:`ParallelRunner` — fans experiment repeats and sweep points
  over a process pool; ``workers=1`` is the in-process serial path and
  produces bit-identical outcomes.
- :class:`ResultCache` / :class:`CacheStats` — content-addressed
  on-disk outcome cache keyed by spec identity plus the
  :data:`CODE_VERSION` salt.
- :func:`run_tasks` — the generic order-preserving parallel map the
  benchmark harness reuses.

Most callers never touch this package directly: pass ``workers=`` /
``cache=`` to :func:`repro.experiments.run_experiment` or
:func:`repro.experiments.sweep_experiment` instead.
"""

from repro.execution.cache import (
    CODE_VERSION,
    CacheStats,
    ResultCache,
    default_cache_dir,
    resolve_cache,
    spec_cache_key,
)
from repro.execution.parallel import ParallelRunner, run_tasks

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "ParallelRunner",
    "ResultCache",
    "default_cache_dir",
    "resolve_cache",
    "run_tasks",
    "spec_cache_key",
]
