"""Content-addressed on-disk cache for experiment outcomes.

An :class:`~repro.experiments.ExperimentOutcome` is a pure function of
its :class:`~repro.experiments.ExperimentSpec` (every repeat seed is
derived from the spec identity), so outcomes are cacheable by spec
content alone.  The key is a SHA-256 over the spec's canonical JSON
form plus a *code-version salt*: bump :data:`CODE_VERSION` whenever a
simulator or protocol change makes previously computed outcomes stale,
and every old entry silently becomes a miss.

Design rules:

- **Corruption is a miss, never a crash.**  Truncated files, garbage
  JSON, schema drift, salt drift, or payloads that fail spec/outcome
  reconstruction all make :meth:`ResultCache.get` return ``None``; the
  caller recomputes and :meth:`ResultCache.put` overwrites the entry.
- **Writes are atomic** (temp file + ``os.replace``), so a crashed or
  concurrent writer can leave at most a stale temp file behind, never a
  half-written entry under the final name.
- Entries are plain JSON — diffable, greppable, no pickle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see below)
    from repro.experiments import ExperimentOutcome, ExperimentSpec

#: Cache invalidation salt.  Bump on any change that alters simulated
#: outcomes (protocol logic, adversary schedules, seed derivation, the
#: aggregation arithmetic); old entries then miss and are recomputed.
CODE_VERSION = "2026.08.1"

#: On-disk record format tag; bump on incompatible record changes.
SCHEMA_VERSION = 1


def canonical_json(payload) -> str:
    """The canonical text form hashed into spec identities.

    Sorted keys at every nesting level, so dict insertion order never
    matters; non-JSON values fall back to ``repr``.  Both the cache key
    (:func:`spec_cache_key`) and the per-repeat seed derivation
    (:meth:`~repro.experiments.ExperimentSpec.seed_for`) canonicalise
    through this one helper, so the two identities cannot diverge.
    """
    return json.dumps(payload, sort_keys=True, default=repr)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def spec_cache_key(spec: "ExperimentSpec", *,
                   salt: str = CODE_VERSION) -> str:
    """Hex content hash identifying ``(spec, salt)``.

    The spec is serialized to canonical JSON (sorted keys, so
    ``protocol_params`` insertion order never matters) and hashed with
    the salt.  Two specs collide only if every field is equal.

    ``backend`` joins the payload only when it is not ``"sim"``, and
    ``sources``/``source_faults``/``proxy_faults``/``topology`` only
    when non-default: the defaults are the pre-field behaviour, so
    every cache entry and journal line written before the fields
    existed keeps hitting.  Unlike :meth:`ExperimentSpec.seed_for`, non-empty
    ``proxy_faults`` *do* join the key — chaos on the wire leaves the
    inputs alone but changes the measured outcome (time, retries,
    failed runs), so those outcomes must not collide.
    """
    payload = dataclasses.asdict(spec)
    if payload.get("backend") == "sim":
        del payload["backend"]
    if payload.get("sources") == 1:
        del payload["sources"]
    if not payload.get("source_faults"):
        payload.pop("source_faults", None)
    if not payload.get("proxy_faults"):
        payload.pop("proxy_faults", None)
    if payload.get("topology", "complete") == "complete":
        payload.pop("topology", None)
    canonical = canonical_json(payload)
    digest = hashlib.sha256(f"{salt}\n{canonical}".encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.stores} stored)")


class ResultCache:
    """Spec-keyed experiment-outcome cache under one directory.

    Args:
        directory: cache root (created lazily on first store).
            ``None`` uses :func:`default_cache_dir`.
        salt: code-version salt mixed into every key; override in tests
            to simulate invalidation.
    """

    def __init__(self, directory: Union[str, Path, None] = None, *,
                 salt: str = CODE_VERSION) -> None:
        self.directory = (Path(directory).expanduser() if directory
                          else default_cache_dir())
        self.salt = salt
        self.stats = CacheStats()

    def path_for(self, spec: "ExperimentSpec") -> Path:
        """The entry file a given spec maps to."""
        return self.directory / f"{spec_cache_key(spec, salt=self.salt)}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, spec: "ExperimentSpec") -> Optional["ExperimentOutcome"]:
        """The cached outcome for ``spec``, or ``None`` on any miss."""
        outcome = self._load(self.path_for(spec), spec)
        if outcome is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return outcome

    def _load(self, path: Path,
              spec: "ExperimentSpec") -> Optional["ExperimentOutcome"]:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, ValueError):  # missing, unreadable, or not UTF-8
            return None
        # Any malformed entry — truncated JSON, wrong schema, fields
        # that no longer reconstruct — is treated as a miss so the
        # caller recomputes and overwrites it.
        try:
            payload = json.loads(text)
            if payload.get("schema") != SCHEMA_VERSION:
                return None
            if payload.get("salt") != self.salt:
                return None
            from repro.persistence import outcome_from_dict
            outcome = outcome_from_dict(payload["outcome"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        # Hash paranoia: a colliding or hand-renamed entry must never
        # masquerade as this spec's outcome.
        if outcome.spec != spec:
            return None
        return outcome

    # -- store -------------------------------------------------------------

    def put(self, spec: "ExperimentSpec",
            outcome: "ExperimentOutcome") -> Path:
        """Write (or overwrite) the entry for ``spec``; returns its path."""
        from repro.persistence import outcome_to_dict
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": SCHEMA_VERSION,
            "salt": self.salt,
            "key": path.stem,
            "outcome": outcome_to_dict(outcome),
        }
        temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        temp.write_text(json.dumps(payload, indent=2, sort_keys=True),
                        encoding="utf-8")
        os.replace(temp, path)
        self.stats.stores += 1
        return path


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalize the user-facing ``cache=`` argument.

    ``None``/``False`` disable caching; ``True`` uses the default
    directory; a string or :class:`~pathlib.Path` names the directory;
    a ready :class:`ResultCache` passes through (sharing its stats).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    raise TypeError(f"cache= must be None, bool, a directory, or a "
                    f"ResultCache, got {type(cache).__name__}")
