"""Append-only sweep journal: checkpoint/resume for long runs.

A long sweep is hours of pure computation; an interruption (Ctrl-C,
OOM kill, pre-empted CI runner) should not discard the repeats that
already finished.  :class:`SweepJournal` checkpoints the engine at the
finest grain it has — one completed ``(spec, repeat)`` record — into an
append-only JSONL file next to the result cache:

- **One line per completed repeat**, written and flushed (+ ``fsync``)
  the moment the parent aggregates it, so at most the in-flight repeats
  are lost on a crash.
- **Replay is salt-checked and corruption-tolerant.**  Each line
  carries the journal schema version and the code-version salt; stale
  or torn lines are skipped (counted in :attr:`JournalStats.corrupt`) —
  the engine simply recomputes those repeats, mirroring the result
  cache's corruption-is-a-miss rule.
- **Keys are content hashes**: the same
  :func:`~repro.execution.cache.spec_cache_key` that addresses the
  result cache, so a journal can never resume the wrong spec and seed
  identity can never diverge from journal identity.

The journal deliberately stores *per-repeat records*, not outcomes:
aggregation always re-runs in the parent from the full record list, so
a resumed sweep's outcomes are bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.execution.cache import (
    CODE_VERSION,
    default_cache_dir,
    spec_cache_key,
)
from repro.obs.telemetry import counter as obs_counter
from repro.obs.telemetry import event as obs_event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments import ExperimentSpec, RepeatRecord

__all__ = ["JournalStats", "SweepJournal", "resolve_journal"]

#: On-disk line format tag; bump on incompatible record changes.
JOURNAL_SCHEMA = 1


@dataclass
class JournalStats:
    """Counters for one :class:`SweepJournal` instance."""

    appended: int = 0  #: records written by this process
    replayed: int = 0  #: usable records found by the last ``replay()``
    corrupt: int = 0   #: torn/stale lines skipped by the last ``replay()``

    def as_dict(self) -> dict:
        return {"appended": self.appended, "replayed": self.replayed,
                "corrupt": self.corrupt}

    def __str__(self) -> str:
        return (f"{self.replayed} replayed / {self.appended} appended "
                f"({self.corrupt} corrupt)")


class SweepJournal:
    """Append-only ``(spec-hash, repeat) -> RepeatRecord`` log.

    Args:
        path: journal file (created on first append).  ``None`` uses
            ``journal.jsonl`` under :func:`default_cache_dir`.
        salt: code-version salt stamped into every line; replay skips
            lines whose salt differs (stale journals resume nothing).
    """

    def __init__(self, path: Union[str, Path, None] = None, *,
                 salt: str = CODE_VERSION) -> None:
        self.path = (Path(path).expanduser() if path
                     else default_cache_dir() / "journal.jsonl")
        self.salt = salt
        self.stats = JournalStats()

    def key_for(self, spec: "ExperimentSpec") -> str:
        """The content hash this journal files ``spec``'s repeats under."""
        return spec_cache_key(spec, salt=self.salt)

    # -- append --------------------------------------------------------------

    def record(self, spec: "ExperimentSpec", repeat: int,
               record: "RepeatRecord") -> None:
        """Append one completed repeat, durably (flush + fsync).

        A single sub-4K ``write`` of one ``\\n``-terminated line is
        atomic on POSIX; replay additionally survives torn lines by
        skipping anything that fails to parse.
        """
        fields = {
            "queries": record.queries,
            "messages": record.messages,
            "time": record.time,
            "correct": bool(record.correct),
        }
        if record.rounds is not None:
            # Additive: round-native backends only, so sim journal
            # lines stay byte-identical with pre-backend writers.
            fields["rounds"] = record.rounds
        line = json.dumps({
            "schema": JOURNAL_SCHEMA,
            "salt": self.salt,
            "key": self.key_for(spec),
            "repeat": repeat,
            "record": fields,
        }, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.stats.appended += 1
        obs_counter("journal_records")

    # -- replay --------------------------------------------------------------

    def replay(self) -> Dict[Tuple[str, int], "RepeatRecord"]:
        """All usable checkpointed records, keyed by ``(key, repeat)``.

        Later lines win (a re-run after a corrupt line re-appends the
        repeat).  Corrupt, torn, or stale-salt lines are skipped and
        counted, never raised.
        """
        from repro.experiments import RepeatRecord
        entries: Dict[Tuple[str, int], "RepeatRecord"] = {}
        corrupt = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except (OSError, ValueError):
            self.stats.replayed = 0
            return entries
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                if payload["schema"] != JOURNAL_SCHEMA:
                    raise ValueError("schema mismatch")
                if payload["salt"] != self.salt:
                    raise ValueError("salt mismatch")
                fields = payload["record"]
                rounds = fields.get("rounds")
                record = RepeatRecord(
                    queries=int(fields["queries"]),
                    messages=int(fields["messages"]),
                    time=float(fields["time"]),
                    correct=bool(fields["correct"]),
                    rounds=None if rounds is None else int(rounds))
                key = (str(payload["key"]), int(payload["repeat"]))
            except (KeyError, TypeError, ValueError):
                corrupt += 1
                continue
            entries[key] = record
        self.stats.replayed = len(entries)
        self.stats.corrupt = corrupt
        obs_event("journal_replay", replayed=len(entries), corrupt=corrupt)
        return entries

    def clear(self) -> None:
        """Delete the journal file (a completed sweep's checkpoints)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def resolve_journal(journal) -> Optional[SweepJournal]:
    """Normalize the user-facing ``journal=`` argument.

    ``None``/``False`` disable journalling; ``True`` uses the default
    path; a string or :class:`~pathlib.Path` names the file; a ready
    :class:`SweepJournal` passes through (sharing its stats).
    """
    if journal is None or journal is False:
        return None
    if journal is True:
        return SweepJournal()
    if isinstance(journal, SweepJournal):
        return journal
    if isinstance(journal, (str, Path)):
        return SweepJournal(journal)
    raise TypeError(f"journal= must be None, bool, a path, or a "
                    f"SweepJournal, got {type(journal).__name__}")
