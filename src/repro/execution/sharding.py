"""Sharded execution of message-free protocol runs.

A protocol whose peers never exchange peer-to-peer messages (each peer
talks only to the external source — ``peer_to_peer = False`` on the
peer class) couples its peers *only* through global parameters: the
input array, the seed, and the per-peer RNG/latency streams.  All of
those are pure functions of ``(seed, pid)``, so one run over ``n``
peers equals the disjoint union of runs over any partition of the pid
space — *bit-for-bit*, not just statistically:

- the input array derives from ``seed`` alone (every shard rebuilds
  the same bits);
- peer RNG streams split off ``rng.split(f"peer-{pid}")`` — untouched
  by which other peers exist;
- adversary latency streams are drawn per ``(pid, request)`` counter,
  so the draw sequence a peer sees is independent of its co-residents;
- complexity measures decompose: ``Q`` is a max over peers, totals are
  sums, ``T`` is a max (all peers start at 0 under the supported
  adversaries).

:func:`run_sharded` exploits this for the scale path's last layer —
six-figure ``n`` split over worker processes via the same
:func:`~repro.execution.parallel.run_tasks` machinery the experiment
engine uses (retry policy, pool-rebuild fault tolerance included).
Protocols that message (``peer_to_peer = True``) are rejected at the
door: their peers couple through the network, and a shard would raise
``unknown destination peer`` on the first cross-shard send anyway.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.execution.parallel import run_tasks
from repro.sim.errors import ConfigurationError
from repro.sim.metrics import ComplexityReport
from repro.sim.runner import RunResult, Simulation
from repro.sim.scheduler import DEFAULT_MAX_EVENTS

__all__ = ["merge_results", "run_sharded", "shard_pids"]


def shard_pids(n: int, shards: int) -> list[range]:
    """Split ``0..n-1`` into ``shards`` contiguous, near-even ranges."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n)
    per = math.ceil(n / shards)
    return [range(lo, min(n, lo + per)) for lo in range(0, n, per)]


def _run_shard(payload: dict) -> RunResult:
    """Worker: one shard's :class:`Simulation` (module-level so the
    pool can pickle it)."""
    kwargs = dict(payload["kwargs"])
    simulation = Simulation(peer_subset=payload["subset"], **kwargs)
    return simulation.run(max_events=payload["max_events"])


def merge_results(parts: Sequence[RunResult]) -> RunResult:
    """Fold per-shard results into the whole-run result.

    Shard-local measures recombine exactly: maxima over peers (``Q``,
    ``T``) are maxima of shard maxima, totals are sums, and the
    per-peer dicts are disjoint unions.
    """
    if not parts:
        raise ValueError("merge_results needs at least one shard result")
    outputs: dict = {}
    statuses: dict = {}
    queried: dict = {}
    queried_by_source: dict = {}
    honest: set[int] = set()
    faulty: set[int] = set()
    per_query: dict[int, int] = {}
    per_msgs: dict[int, int] = {}
    for part in parts:
        outputs.update(part.outputs)
        statuses.update(part.statuses)
        queried.update(part.queried_indices)
        queried_by_source.update(part.queried_by_source)
        honest |= part.honest
        faulty |= part.faulty
        per_query.update(part.report.per_peer_query_bits)
        per_msgs.update(part.report.per_peer_messages)
    report = ComplexityReport(
        query_complexity=max(
            (part.report.query_complexity for part in parts), default=0),
        total_query_bits=sum(part.report.total_query_bits
                             for part in parts),
        message_complexity=sum(part.report.message_complexity
                               for part in parts),
        message_bits=sum(part.report.message_bits for part in parts),
        time_complexity=max(part.report.time_complexity for part in parts),
        per_peer_query_bits=per_query,
        per_peer_messages=per_msgs,
    )
    return RunResult(
        data=parts[0].data,
        outputs=outputs,
        statuses=statuses,
        report=report,
        honest=honest,
        faulty=faulty,
        events_processed=sum(part.events_processed for part in parts),
        elapsed_virtual_time=max(part.elapsed_virtual_time
                                 for part in parts),
        trace=None,
        queried_indices=queried,
        queried_by_source=queried_by_source,
    )


def run_sharded(*, n: int, peer_factory, shards: int, workers: int = 1,
                ell: Optional[int] = None, data=None,
                t: Optional[int] = None, adversary=None, seed: int = 0,
                sources: int = 1, source_faults=(), scale=None,
                max_events: int = DEFAULT_MAX_EVENTS) -> RunResult:
    """Run one message-free download split over ``shards`` pid ranges.

    Each shard is a full :class:`Simulation` restricted to its pid
    subset (``peer_subset=``) with untouched global parameters, so the
    merged result is bit-identical to the unsharded run — pinned by
    ``tests/integration/test_scale_golden.py``.  ``workers > 1``
    distributes shards over a process pool.
    """
    protocol_class = getattr(peer_factory, "protocol_class", None)
    if protocol_class is None or getattr(protocol_class, "peer_to_peer",
                                         True):
        name = getattr(protocol_class, "protocol_name", peer_factory)
        raise ConfigurationError(
            f"run_sharded needs a message-free protocol "
            f"(peer_to_peer = False); {name!r} exchanges peer messages "
            f"and cannot be split across shards")
    kwargs = dict(n=n, peer_factory=peer_factory, ell=ell, data=data,
                  t=t, adversary=adversary, seed=seed, sources=sources,
                  source_faults=source_faults, scale=scale)
    payloads = [{"kwargs": kwargs, "subset": list(subset),
                 "max_events": max_events}
                for subset in shard_pids(n, shards)]
    parts = run_tasks(_run_shard, payloads, workers=workers)
    return merge_results(parts)
