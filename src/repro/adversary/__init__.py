"""Adversaries for the DR model.

The model's adversary controls message scheduling and failures; this
package provides the interface (:mod:`~repro.adversary.base`) plus a
battery of concrete strategies:

- latency-only: :class:`UniformRandomDelay`, :class:`TargetedSlowdown`,
  :class:`BurstyDelay`, :class:`StaggeredStart`;
- crash faults: :class:`CrashAdversary` with at-time and mid-broadcast
  triggers;
- Byzantine faults: :class:`ByzantineAdversary` wrapping honest
  executions with corruption strategies, plus
  :class:`ScriptedByzantinePeer` for fully custom attackers;
- composition: :class:`ComposedAdversary` (faults x latency);
- the paper's lower-bound constructions live in
  :mod:`repro.adversary.lower_bound` (imported lazily by
  :mod:`repro.lowerbounds` to avoid a protocol dependency here).
"""

from repro.adversary.base import Adversary, NullAdversary, SynchronousAdversary
from repro.adversary.byzantine import (
    ByzantineAdversary,
    ByzantineStrategy,
    EquivocateStrategy,
    PerPeerStrategy,
    ScriptedByzantinePeer,
    SelectiveSilenceStrategy,
    SilentStrategy,
    WrongBitsStrategy,
    flip_bitlike_fields,
)
from repro.adversary.compose import ComposedAdversary
from repro.adversary.adaptive import AdaptiveCrashAdversary
from repro.adversary.dynamic import DynamicByzantineAdversary
from repro.adversary.crash import (
    CrashAdversary,
    CrashAfterSends,
    CrashAtTime,
    CrashSpec,
)
from repro.adversary.latency import (
    BurstyDelay,
    LatencyAdversary,
    StaggeredStart,
    TargetedSlowdown,
    UniformRandomDelay,
)

__all__ = [
    "AdaptiveCrashAdversary",
    "Adversary",
    "BurstyDelay",
    "ByzantineAdversary",
    "ByzantineStrategy",
    "ComposedAdversary",
    "CrashAdversary",
    "CrashAfterSends",
    "CrashAtTime",
    "CrashSpec",
    "DynamicByzantineAdversary",
    "EquivocateStrategy",
    "LatencyAdversary",
    "NullAdversary",
    "PerPeerStrategy",
    "ScriptedByzantinePeer",
    "SelectiveSilenceStrategy",
    "SilentStrategy",
    "StaggeredStart",
    "SynchronousAdversary",
    "TargetedSlowdown",
    "UniformRandomDelay",
    "WrongBitsStrategy",
    "flip_bitlike_fields",
]
