"""Composition of a fault adversary with a latency adversary.

The model's adversary wields both powers at once: it fails peers *and*
schedules every message.  The concrete adversaries in this package each
implement one power; :class:`ComposedAdversary` welds a fault plan
(crash or Byzantine) onto a delay schedule so that e.g. "asynchronous
network + mid-broadcast crashes" is one object::

    ComposedAdversary(
        faults=CrashAdversary(crash_fraction=0.5),
        latency=UniformRandomDelay(),
    )

Division of labour:

- ``faults`` decides who is faulty, builds corrupted peers, permits or
  refuses individual sends (mid-batch crashes), and receives the
  ``after_setup`` hook;
- ``latency`` decides start times and all message/query latencies, and
  owns the quiescence-release policy;
- cycle notifications go to both.
"""

from __future__ import annotations

from repro.adversary.base import Adversary, PeerFactory
from repro.sim.messages import Message
from repro.sim.network import WithheldMessage
from repro.sim.peer import SimEnv
from repro.sim.process import Process


class ComposedAdversary(Adversary):
    """Fault plan from one adversary, scheduling from another."""

    def __init__(self, *, faults: Adversary, latency: Adversary) -> None:
        super().__init__()
        self.faults = faults
        self.latency = latency

    # -- lifecycle ------------------------------------------------------------

    def bind(self, env: SimEnv) -> None:
        super().bind(env)
        self.faults.bind(env)
        self.latency.bind(env)

    def after_setup(self, processes: dict[int, Process]) -> None:
        self.faults.after_setup(processes)
        self.latency.after_setup(processes)

    # -- fault plan (delegated to `faults`) -----------------------------------

    def fault_budget(self, n: int) -> int:
        return self.faults.fault_budget(n)

    def faulty_peers(self) -> set[int]:
        return self.faults.faulty_peers()

    def actually_faulty(self) -> set[int]:
        return self.faults.actually_faulty()

    def make_faulty_peer(self, pid: int, env: SimEnv,
                         honest_factory: PeerFactory) -> Process:
        return self.faults.make_faulty_peer(pid, env, honest_factory)

    def permit_send(self, sender: int, destination: int, message: Message,
                    now: float) -> bool:
        return self.faults.permit_send(sender, destination, message, now)

    def transform_message(self, sender: int, destination: int,
                          message: Message, now: float, cycle: int):
        return self.faults.transform_message(sender, destination, message,
                                             now, cycle)

    # -- scheduling (delegated to `latency`) --------------------------------------

    def start_time(self, pid: int) -> float:
        return self.latency.start_time(pid)

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int):
        return self.latency.message_latency(sender, destination, message,
                                            now, cycle)

    def query_latency(self, pid: int, now: float):
        return self.latency.query_latency(pid, now)

    def release_at_quiescence(
            self, withheld: list[WithheldMessage]) -> list[WithheldMessage]:
        return self.latency.release_at_quiescence(withheld)

    # -- both ---------------------------------------------------------------------

    def on_cycle_start(self, pid: int, cycle: int, now: float) -> None:
        self.faults.on_cycle_start(pid, cycle, now)
        self.latency.on_cycle_start(pid, cycle, now)
