"""The adaptive crash adversary: pick victims after seeing the queries.

The model's standard adversary must fix a cycle's schedule before the
cycle's coin flips.  The *adaptive* adversary here is deliberately
stronger: it watches which bits every peer queried (the source's query
log is exactly the information an adaptive adversary in the proofs
conditions on) and only then chooses whom to crash — greedily, to
maximize the number of bits whose every querier dies.

This is the adversary that separates single-round protocols from
iterated ones:

- a one-round protocol has already committed its entire coverage when
  the adversary strikes, so every bit whose owners all died lands on
  someone's completion bill;
- Algorithm 2 just runs another phase.

Timing: the adversary pins query latency to 1.0 and message latency to
[1.5, 2.5], then inspects the query log at virtual time 0.5 — after
all first-cycle queries are issued (time 0) but before any response or
share is delivered — and crashes its victims on the spot, before they
can forward anything.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.adversary.base import Adversary
from repro.sim.messages import Message
from repro.sim.process import Process
from repro.util.validation import check_fraction


class AdaptiveCrashAdversary(Adversary):
    """Greedy coverage-killing crashes, chosen from the query log."""

    def __init__(self, *, crash_fraction: float,
                 inspect_at: float = 0.5) -> None:
        super().__init__()
        check_fraction("crash_fraction", crash_fraction,
                       inclusive_high=False)
        self.crash_fraction = crash_fraction
        self.inspect_at = inspect_at
        self.victims: Optional[set[int]] = None
        self._processes: dict[int, Process] = {}
        self._halted: set[int] = set()

    def fault_budget(self, n: int) -> int:
        return int(math.floor(self.crash_fraction * n))

    def faulty_peers(self) -> set[int]:
        # Victims are chosen mid-run; the runner's upfront corruption
        # plan is therefore empty and every peer starts honest.
        return set()

    def actually_faulty(self) -> set[int]:
        return set(self._halted)

    # -- fixed timing so "inspect then crash" is race-free ------------------

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int) -> float:
        # Deterministic-but-spread latencies strictly above inspect_at.
        return 1.5 + ((sender * 31 + destination * 7) % 100) / 100.0

    def query_latency(self, pid: int, now: float) -> float:
        return 1.0

    # -- the adaptive strike ---------------------------------------------------

    def after_setup(self, processes: dict[int, Process]) -> None:
        self._processes = dict(processes)
        self.env.kernel.schedule(self.inspect_at, self._strike,
                                 kind="adaptive-crash")

    def _strike(self) -> None:
        budget = self.fault_budget(self.env.n)
        # Snapshot the log *now*: completion queries issued after the
        # strike must not leak into the adversary's information or the
        # diagnostics.
        self._coverage_at_strike = {
            pid: set(indices) for pid, indices
            in self.env.source.queried_indices.items()}
        if budget == 0:
            self.victims = set()
            return
        self.victims = greedy_coverage_kill(self._coverage_at_strike,
                                            self.env.ell, budget)
        for pid in self.victims:
            process = self._processes.get(pid)
            if process is not None and process.live:
                process.halt()
                self._halted.add(pid)

    def killed_bits(self) -> set[int]:
        """Bits whose every strike-time querier was crashed."""
        if self.victims is None:
            return set()
        survivors_cover: set[int] = set()
        for pid, indices in self._coverage_at_strike.items():
            if pid not in self.victims:
                survivors_cover |= indices
        return set(range(self.env.ell)) - survivors_cover


def greedy_coverage_kill(coverage: dict[int, set[int]], ell: int,
                         budget: int) -> set[int]:
    """Choose ``budget`` peers to crash, greedily maximizing the number
    of bits left with zero surviving queriers.

    Exact maximization is NP-hard (it is a covering problem); the
    greedy heuristic repeatedly kills the peer whose removal orphans
    the most bits, which is the standard witness-quality choice.
    """
    victims: set[int] = set()
    # owners[bit] = set of peers that queried it (and are still alive).
    owners: dict[int, set[int]] = {}
    for pid, indices in coverage.items():
        for index in indices:
            owners.setdefault(index, set()).add(pid)
    for _ in range(budget):
        best_pid, best_gain = None, -1
        alive = [pid for pid in coverage if pid not in victims]
        for pid in alive:
            gain = sum(1 for index in coverage[pid]
                       if owners.get(index) == {pid})
            if gain > best_gain:
                best_pid, best_gain = pid, gain
        if best_pid is None:
            break
        victims.add(best_pid)
        for index in coverage[best_pid]:
            holders = owners.get(index)
            if holders is not None:
                holders.discard(best_pid)
    return victims
