"""The adversary interface and the benign default.

The model's adversary (Section 1.2 of the paper) has exactly these
powers, each of which maps to one method of :class:`Adversary`:

========================================  =====================================
Power                                     Hook
========================================  =====================================
choose the input                          (callers pin ``data=`` instead; the
                                          lower-bound drivers use it)
choose when each peer starts              :meth:`start_time`
set per-message latency                   :meth:`message_latency`
set query-response latency                :meth:`query_latency`
fail up to ``t`` peers                    :meth:`faulty_peers`,
                                          :meth:`make_faulty_peer` (Byzantine),
                                          :meth:`permit_send` /
                                          :meth:`after_setup` (crash timing)
release delayed messages at quiescence    :meth:`release_at_quiescence`
========================================  =====================================

Restrictions the model imposes, and how they are honoured here:

- *Finite delays*: a latency is either a finite float or
  :data:`~repro.sim.network.WITHHOLD`; withheld messages are flushed at
  quiescence (the kernel compels it).
- *Cycle-respecting scheduling* (randomized setting): latencies for a
  message sent in local cycle ``c`` may not depend on coin flips made in
  cycle ``c``.  Adversaries in this library guarantee that by
  construction — their latency functions are deterministic in
  ``(sender, destination, cycle, per-edge counter)`` and the
  adversary's *own* seed, never in message content.
- The adversary knows the protocol and may simulate it (the
  lower-bound adversaries in :mod:`repro.adversary.lower_bound` do).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.messages import Message
from repro.sim.network import WithheldMessage
from repro.sim.peer import SimEnv
from repro.sim.process import Process

PeerFactory = Callable[[int, SimEnv], Process]


class Adversary:
    """Base adversary: no faults, unit latencies (synchronous behaviour)."""

    def __init__(self) -> None:
        self.env: Optional[SimEnv] = None
        self.rng = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self, env: SimEnv) -> None:
        """Attach to a run; derive the adversary's private randomness."""
        self.env = env
        self.rng = env.rng.split("adversary")
        self.on_bind()

    def on_bind(self) -> None:
        """Subclass hook: runs once after :meth:`bind` (choose victims here)."""

    def after_setup(self, processes: dict[int, Process]) -> None:
        """Subclass hook: runs after peers are registered (schedule crashes)."""

    # -- fault plan ------------------------------------------------------------

    def fault_budget(self, n: int) -> int:
        """The ``t`` this adversary needs (used when the caller omits ``t``)."""
        return 0

    def faulty_peers(self) -> set[int]:
        """Peers this adversary plans to corrupt or crash."""
        return set()

    def actually_faulty(self) -> set[int]:
        """Peers that really deviated or crashed in this execution.

        Defaults to the plan; crash adversaries narrow it to peers that
        were actually halted (a planned-but-never-executed crash leaves
        the peer nonfaulty, and it then counts for complexity measures).
        """
        return self.faulty_peers()

    def make_faulty_peer(self, pid: int, env: SimEnv,
                         honest_factory: PeerFactory) -> Process:
        """Build the process that runs in a corrupted peer's place.

        Crash adversaries return the honest process (they halt it
        later); Byzantine adversaries return an attacker process.
        """
        return honest_factory(pid, env)

    # -- scheduling powers ----------------------------------------------------------

    def start_time(self, pid: int) -> float:
        """Absolute virtual time at which peer ``pid`` begins executing."""
        return 0.0

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int):
        """Latency for one peer-to-peer message (or ``WITHHOLD``)."""
        return 1.0

    def query_latency(self, pid: int, now: float):
        """Latency for one source query round-trip (or ``WITHHOLD``)."""
        return 1.0

    def permit_send(self, sender: int, destination: int, message: Message,
                    now: float) -> bool:
        """Called before each individual send; False crashes the sender
        mid-batch and swallows this message."""
        return True

    def transform_message(self, sender: int, destination: int,
                          message: Message, now: float, cycle: int):
        """Rewrite (or return None to eat) an outgoing message.

        This is the *dynamic* Byzantine power (the companion paper's
        Dynamic Byzantine model, where the corrupted set changes
        between cycles): the peer's computation stays honest, but its
        mouth may lie while it is corrupted.  The default adversary is
        the identity.
        """
        return message

    def release_at_quiescence(
            self, withheld: list[WithheldMessage]) -> list[WithheldMessage]:
        """Choose which withheld deliveries to release at quiescence.

        The model compels eventual release, so the default releases
        everything.  Subclasses may stage releases, but returning an
        empty list while honest peers still wait deadlocks the run (and
        the kernel reports it as such).
        """
        return withheld

    def on_cycle_start(self, pid: int, cycle: int, now: float) -> None:
        """Notification that peer ``pid`` entered local cycle ``cycle``."""


class NullAdversary(Adversary):
    """No faults, all latencies exactly one unit: the synchronous baseline."""


class SynchronousAdversary(NullAdversary):
    """Alias for readability at call sites that stress synchrony."""
