"""Latency-only adversaries (no faults).

These exercise the *asynchrony* half of the model: arbitrary finite,
per-message delays.  All of them draw delays from hash-based functions
of ``(sender, destination, cycle, per-edge message counter)`` and the
adversary's own seed — never from message contents — which makes them
cycle-respecting by construction (the delay of a cycle-``c`` message is
fixed before any cycle-``c`` coin flip) and keeps runs reproducible.

Delays are normalized to at most :attr:`LatencyAdversary.max_delay`
(default 1.0), the standard convention under which asynchronous time
complexity is measured.
"""

from __future__ import annotations

from collections import defaultdict

from repro.adversary.base import Adversary
from repro.sim.messages import Message
from repro.util.rng import derive_seed
from repro.util.validation import check_fraction

_RESOLUTION = float(1 << 53)


class LatencyAdversary(Adversary):
    """Shared machinery: order-independent per-message pseudo-randomness."""

    def __init__(self, *, min_delay: float = 0.05,
                 max_delay: float = 1.0) -> None:
        super().__init__()
        if not 0 < min_delay <= max_delay:
            raise ValueError(
                f"need 0 < min_delay <= max_delay, got "
                f"({min_delay}, {max_delay})")
        self.min_delay = min_delay
        self.max_delay = max_delay
        self._edge_counters: dict[tuple[int, int, int], int] = defaultdict(int)

    def _unit(self, *labels: object) -> float:
        """A uniform [0,1) value determined by the seed and ``labels``."""
        seed = derive_seed(self.rng.seed, ":".join(str(item) for item in labels))
        return (seed >> 11) / _RESOLUTION

    def _edge_unit(self, sender: int, destination: int, cycle: int) -> float:
        """Per-message uniform value; counter makes repeats independent."""
        key = (sender, destination, cycle)
        counter = self._edge_counters[key]
        self._edge_counters[key] = counter + 1
        return self._unit("edge", sender, destination, cycle, counter)

    def _scale(self, unit: float) -> float:
        return self.min_delay + unit * (self.max_delay - self.min_delay)


class UniformRandomDelay(LatencyAdversary):
    """Every message/query delayed uniformly in ``[min_delay, max_delay]``.

    The workhorse asynchrony model for correctness tests: deliveries
    interleave unpredictably but every delay is finite.
    """

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int) -> float:
        return self._scale(self._edge_unit(sender, destination, cycle))

    def query_latency(self, pid: int, now: float) -> float:
        key = (pid, -1, 0)
        counter = self._edge_counters[key]
        self._edge_counters[key] = counter + 1
        return self._scale(self._unit("query", pid, counter))


class TargetedSlowdown(UniformRandomDelay):
    """Messages *from* a victim set crawl at ``max_delay``; others race.

    This is the classic async stressor for the crash protocols: a slow
    peer is indistinguishable from a crashed one, so every "wait for
    n - t" step gets exercised with the victims always arriving last.
    """

    def __init__(self, slow_peers: set[int], *, fast_delay: float = 0.05,
                 slow_delay: float = 1.0) -> None:
        super().__init__(min_delay=fast_delay, max_delay=slow_delay)
        self.slow_peers = set(slow_peers)
        self.fast_delay = fast_delay
        self.slow_delay = slow_delay

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int) -> float:
        unit = self._edge_unit(sender, destination, cycle)
        if sender in self.slow_peers:
            # Jitter just below the ceiling keeps ordering deterministic
            # but distinct across messages.
            return self.slow_delay * (0.95 + 0.05 * unit)
        return self.fast_delay * (0.5 + 0.5 * unit)

    def query_latency(self, pid: int, now: float) -> float:
        counter_key = (pid, -1, 0)
        counter = self._edge_counters[counter_key]
        self._edge_counters[counter_key] = counter + 1
        unit = self._unit("query", pid, counter)
        if pid in self.slow_peers:
            return self.slow_delay * (0.95 + 0.05 * unit)
        return self.fast_delay * (0.5 + 0.5 * unit)


class BurstyDelay(LatencyAdversary):
    """Most messages are fast; a seeded fraction stall near ``max_delay``.

    Models congestion bursts.  ``stall_fraction`` of messages (chosen
    per message, order-independently) take ``max_delay``; the rest take
    ``min_delay``-ish.
    """

    def __init__(self, *, stall_fraction: float = 0.2,
                 min_delay: float = 0.05, max_delay: float = 1.0) -> None:
        super().__init__(min_delay=min_delay, max_delay=max_delay)
        self.stall_fraction = check_fraction("stall_fraction", stall_fraction)

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int) -> float:
        unit = self._edge_unit(sender, destination, cycle)
        if unit < self.stall_fraction:
            return self.max_delay
        return self._scale((unit - self.stall_fraction)
                           / max(1e-12, 1.0 - self.stall_fraction) * 0.25)

    def query_latency(self, pid: int, now: float) -> float:
        key = (pid, -1, 0)
        counter = self._edge_counters[key]
        self._edge_counters[key] = counter + 1
        unit = self._unit("query", pid, counter)
        if unit < self.stall_fraction:
            return self.max_delay
        return self.min_delay


class StaggeredStart(UniformRandomDelay):
    """Peers begin execution at seeded, distinct times in ``[0, spread]``.

    The model does not assume a simultaneous start; protocols must
    tolerate peers that have not begun yet (their messages simply have
    not been sent).
    """

    def __init__(self, *, spread: float = 5.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if spread < 0:
            raise ValueError(f"spread must be non-negative, got {spread}")
        self.spread = spread

    def start_time(self, pid: int) -> float:
        return self.spread * self._unit("start", pid)
