"""Protocol-aware scripted Byzantine attacks.

The generic corruption strategies in :mod:`repro.adversary.byzantine`
wrap an honest execution; the attackers here instead *speak the
protocols' message types directly*, targeting each protocol's specific
trust anchor:

- :class:`CommitteeForgeAttacker` — floods forged
  :class:`~repro.protocols.byz_committee.CommitteeReport` messages for
  every block it sits on (and some it does not), trying to assemble
  ``t + 1`` matching fakes;
- :class:`FrequencySpamAttacker` — targets the randomized protocols'
  tau-frequency filter: all corrupted peers coordinate on a single
  fabricated string per segment so every fake reaches the threshold
  and inflates every decision tree;
- :class:`SplitReportAttacker` — sends a *different* fabricated string
  to every peer, trying to starve the threshold instead (honest peers
  should then see fakes with support 1 each).

These live in the adversary package but import protocol message types;
that direction of dependency is deliberate — attacks are written
against protocols, never vice versa.
"""

from __future__ import annotations

from typing import Iterator

from repro.adversary.byzantine import ScriptedByzantinePeer
from repro.core.assignment import committee_for
from repro.core.segments import Segmentation
from repro.protocols.byz_committee import CommitteeReport
from repro.protocols.byz_two_cycle import SegmentReport
from repro.sim.process import WaitUntil


def _flip(string: str) -> str:
    return "".join("1" if ch == "0" else "0" for ch in string)


class CommitteeForgeAttacker(ScriptedByzantinePeer):
    """Forges committee reports for every block in the input.

    For blocks it legitimately sits on, it reports the *flipped* block
    value (it queries the real one first, so its lie is maximally
    plausible in length and timing); for every other block it forges
    reports anyway — honest peers must reject those on membership
    grounds.  With ``2t + 1`` committees, ``t`` coordinated forgers can
    contribute at most ``t`` matching fakes: one short of acceptance.
    """

    def __init__(self, pid, env, block_size: int = 1) -> None:
        super().__init__(pid, env)
        self.block_size = block_size

    def body(self) -> Iterator[WaitUntil]:
        import math
        blocks = Segmentation(self.env.ell,
                              max(1, math.ceil(self.env.ell
                                               / self.block_size)))
        committee_size = 2 * self.env.t + 1
        for block in range(blocks.num_segments):
            lo, hi = blocks.bounds(block)
            fake = "1" * (hi - lo)
            if self.pid in committee_for(block, committee_size, self.env.n):
                fake = _flip(fake)  # any consistent lie will do
            self.inject_all(CommitteeReport(sender=self.pid, block=block,
                                            string=fake))
        # Also forge a report for a nonexistent block (robustness bait).
        self.inject_all(CommitteeReport(sender=self.pid,
                                        block=blocks.num_segments + 7,
                                        string="0" * self.block_size))


class FrequencySpamAttacker(ScriptedByzantinePeer):
    """Coordinated tau-frequency flooding for the randomized protocols.

    Every corrupted peer sends the *same* fabricated string for *every*
    segment, so each fake gets support ``t`` — past the threshold
    whenever ``tau <= t``.  Correctness must then rest entirely on the
    decision trees: the fakes enter the candidate sets, but the source
    queries route every honest peer back to the true string.  The cost
    of the attack is the extra tree queries it forces — which is
    exactly the ``n / tau`` term of Theorem 3.7's bound.
    """

    def __init__(self, pid, env, num_segments: int) -> None:
        super().__init__(pid, env)
        self.num_segments = num_segments

    def body(self) -> Iterator[WaitUntil]:
        segmentation = Segmentation(self.env.ell, self.num_segments)
        for segment in range(segmentation.num_segments):
            lo, hi = segmentation.bounds(segment)
            fake = "10" * ((hi - lo + 1) // 2)
            self.inject_all(SegmentReport(sender=self.pid, segment=segment,
                                          string=fake[:hi - lo]))


class SplitReportAttacker(ScriptedByzantinePeer):
    """Per-destination fabrications: support-1 noise for every peer.

    The dual of :class:`FrequencySpamAttacker`: no fake ever reaches
    ``tau >= 2``, so the filter should drop all of them and honest
    peers should pay *zero* extra tree queries for this attacker.
    """

    def __init__(self, pid, env, num_segments: int) -> None:
        super().__init__(pid, env)
        self.num_segments = num_segments

    def body(self) -> Iterator[WaitUntil]:
        segmentation = Segmentation(self.env.ell, self.num_segments)
        for segment in range(segmentation.num_segments):
            lo, hi = segmentation.bounds(segment)
            width = hi - lo
            for destination in self.env.peer_ids:
                if destination == self.pid:
                    continue
                # Unique per (attacker, destination): no fake can ever
                # accumulate support above 1.
                pattern = format(self.pid * 65_537 + destination, "032b")
                fake = (pattern * (width // 32 + 1))[:width]
                self.inject(destination,
                            SegmentReport(sender=self.pid, segment=segment,
                                          string=fake))
