"""Crash-fault adversaries.

The crash model lets the adversary stop a peer permanently at any point
of its execution — including *between the individual sends of one
batch* ("after the peer has already sent some, but perhaps not all, of
the messages it was instructed to send").  Two crash triggers cover
that power exactly:

- :class:`CrashAtTime` — halt at a chosen virtual time;
- :class:`CrashAfterSends` — halt immediately before the peer's
  ``(count+1)``-th send, which slices a broadcast mid-way.

A planned crash that never fires (e.g. ``CrashAfterSends(10**9)`` on a
peer that terminates early) leaves the peer *nonfaulty* — it then
counts for query/time complexity, matching the paper's definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.adversary.base import Adversary
from repro.sim.messages import Message
from repro.sim.process import Process
from repro.util.validation import check_fraction, check_nonnegative


class CrashSpec:
    """Base class for crash triggers."""


@dataclass(frozen=True)
class CrashAtTime(CrashSpec):
    """Halt the peer at absolute virtual ``time``."""

    time: float


@dataclass(frozen=True)
class CrashAfterSends(CrashSpec):
    """Halt the peer right before its ``(count+1)``-th message send.

    ``count=0`` crashes the peer before it sends anything at all;
    ``count=k`` lets exactly ``k`` messages out (possibly slicing a
    broadcast).
    """

    count: int

    def __post_init__(self) -> None:
        check_nonnegative("count", self.count)


class CrashAdversary(Adversary):
    """Crashes a chosen or seeded set of peers; unit latencies otherwise.

    Combine with a latency adversary via
    :class:`~repro.adversary.compose.ComposedAdversary` for the full
    asynchronous crash setting.

    Args:
        crashes: explicit plan, mapping peer ID to a :class:`CrashSpec`.
        crash_fraction: alternatively, crash ``floor(fraction * n)``
            seeded-random peers.
        mode: how seeded victims crash — ``"mid_broadcast"`` (after a
            random number of sends) or ``"at_time"`` (at a random time
            in ``[0, horizon]``).
        horizon: time range for seeded ``"at_time"`` crashes.
    """

    def __init__(self, *, crashes: Optional[dict[int, CrashSpec]] = None,
                 crash_fraction: Optional[float] = None,
                 mode: str = "mid_broadcast",
                 horizon: float = 20.0) -> None:
        super().__init__()
        if (crashes is None) == (crash_fraction is None):
            raise ValueError("pass exactly one of crashes= or crash_fraction=")
        if mode not in ("mid_broadcast", "at_time"):
            raise ValueError(f"unknown mode {mode!r}")
        if crash_fraction is not None:
            check_fraction("crash_fraction", crash_fraction,
                           inclusive_high=False)
        # Note `is not None`: an *empty* explicit plan is a legitimate
        # zero-crash adversary, distinct from "no plan given".
        self._explicit = dict(crashes) if crashes is not None else None
        self.crash_fraction = crash_fraction
        self.mode = mode
        self.horizon = horizon
        self.plan: dict[int, CrashSpec] = {}
        self._send_counts: dict[int, int] = {}
        self._halted: set[int] = set()
        self._processes: dict[int, Process] = {}

    # -- plan ------------------------------------------------------------------

    def fault_budget(self, n: int) -> int:
        if self._explicit is not None:
            return len(self._explicit)
        return int(math.floor(self.crash_fraction * n))

    def on_bind(self) -> None:
        if self._explicit is not None:
            for pid in self._explicit:
                if not 0 <= pid < self.env.n:
                    raise ValueError(f"crash plan names unknown peer {pid}")
            self.plan = dict(self._explicit)
            return
        count = self.fault_budget(self.env.n)
        victims = self.rng.sample(range(self.env.n), count)
        self.plan = {pid: self._seeded_spec(pid) for pid in victims}

    def _seeded_spec(self, pid: int) -> CrashSpec:
        if self.mode == "at_time":
            return CrashAtTime(self.rng.uniform(0.0, self.horizon))
        # A peer in the phased protocols sends O(n) messages per phase;
        # a bound of 3n send slots places the crash anywhere from
        # before-the-first-send to deep inside a later broadcast.
        return CrashAfterSends(self.rng.randrange(3 * self.env.n))

    def faulty_peers(self) -> set[int]:
        return set(self.plan)

    def actually_faulty(self) -> set[int]:
        return set(self._halted)

    # -- execution --------------------------------------------------------------

    def after_setup(self, processes: dict[int, Process]) -> None:
        self._processes = dict(processes)
        for pid, spec in self.plan.items():
            if isinstance(spec, CrashAtTime):
                delay = max(0.0, spec.time - self.env.kernel.now)
                self.env.kernel.schedule(
                    delay, lambda victim=pid: self._halt(victim),
                    kind=f"crash:{pid}")

    def _halt(self, pid: int) -> None:
        process = self._processes.get(pid)
        if process is None or not process.live:
            return  # already finished or already crashed
        process.halt()
        self._halted.add(pid)
        if self.env.trace is not None:
            self.env.trace.record(self.env.kernel.now, "crash", pid=pid)
        if self.env.telemetry is not None:
            self.env.telemetry.emit("crash", {"t": self.env.kernel.now,
                                              "peer": pid})

    def permit_send(self, sender: int, destination: int, message: Message,
                    now: float) -> bool:
        spec = self.plan.get(sender)
        if not isinstance(spec, CrashAfterSends):
            return True
        sent = self._send_counts.get(sender, 0)
        if sent >= spec.count:
            self._halt(sender)
            return False
        self._send_counts[sender] = sent + 1
        return True
