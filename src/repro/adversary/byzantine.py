"""Byzantine adversaries: corrupted peers that deviate arbitrarily.

The implementation strategy is *honest-execution wrapping*: a corrupted
peer runs the real protocol code, but its outgoing messages pass
through a :class:`ByzantineStrategy` that may rewrite, redirect, or
drop them (and may rewrite differently per destination — equivocation).
This gives protocol-aware attacks for free: the attacker automatically
speaks the protocol's message types, participates in its waits, and
stays in lockstep with honest peers, while lying about content.
Attacks that need fully custom behaviour (e.g. flooding crafted
segment reports) subclass :class:`ScriptedByzantinePeer` instead.

Byzantine message traffic is not charged to message complexity and is
exempt from the honest message-size limit (both match the model, which
measures only nonfaulty peers).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Iterator, Optional

from repro.adversary.base import Adversary, PeerFactory
from repro.sim.messages import Message
from repro.sim.peer import SimEnv
from repro.sim.process import Process, WaitUntil
from repro.util.validation import check_fraction


def flip_bitlike_fields(message: Message) -> Message:
    """Return a copy of ``message`` with every bit-like payload inverted.

    Bit-like fields: ``str`` values over the 0/1 alphabet (segment
    strings) and ``dict`` values whose entries are 0/1 ints (bit maps).
    Scalar 0/1 ``int`` fields named ``value`` or ``bit`` are flipped
    too.  Messages with no bit-like payload are returned unchanged.
    """
    replacements = {}
    for field in dataclasses.fields(message):
        if field.name == "sender":
            continue
        value = getattr(message, field.name)
        if isinstance(value, str) and value and set(value) <= {"0", "1"}:
            replacements[field.name] = "".join(
                "1" if ch == "0" else "0" for ch in value)
        elif isinstance(value, dict) and value and all(
                bit in (0, 1) for bit in value.values()):
            replacements[field.name] = {key: 1 - bit
                                        for key, bit in value.items()}
        elif field.name in ("value", "bit") and value in (0, 1):
            replacements[field.name] = 1 - value
    if not replacements:
        return message
    return dataclasses.replace(message, **replacements)


class PerPeerStrategy:
    """Picklable ``strategy_factory``: one fresh strategy per corrupted
    peer.

    ``PerPeerStrategy(WrongBitsStrategy)`` is the closure-free spelling
    of ``lambda pid: WrongBitsStrategy()``.  Lambdas cannot cross
    process boundaries, so adversaries meant to run under the parallel
    experiment engine (:mod:`repro.execution`) must use this instead.
    Keyword arguments are forwarded to every construction.
    """

    def __init__(self, strategy_class: Callable[..., "ByzantineStrategy"],
                 **kwargs) -> None:
        self.strategy_class = strategy_class
        self.kwargs = dict(kwargs)

    def __call__(self, pid: int) -> "ByzantineStrategy":
        return self.strategy_class(**self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PerPeerStrategy({self.strategy_class.__name__}"
                f"{', ' + repr(self.kwargs) if self.kwargs else ''})")


class ByzantineStrategy:
    """Per-peer corruption policy applied to the honest execution."""

    name = "byzantine"

    def corrupt(self, message: Message, destination: int,
                pid: int) -> Optional[Message]:
        """Rewrite an outgoing ``message`` (None drops it entirely)."""
        raise NotImplementedError


class SilentStrategy(ByzantineStrategy):
    """Send nothing at all — the strongest *omission* attack.

    Against the crash protocols this behaves like a crash before the
    first send; against Byzantine-model protocols it forces every
    "wait for n - t" to be satisfied without the attacker.
    """

    name = "silent"

    def corrupt(self, message: Message, destination: int,
                pid: int) -> Optional[Message]:
        return None


class WrongBitsStrategy(ByzantineStrategy):
    """Report inverted data to everyone, consistently.

    All recipients see the same lie, so frequency-based defences see a
    coherent fake value with up to ``t`` supporters.
    """

    name = "wrong-bits"

    def corrupt(self, message: Message, destination: int,
                pid: int) -> Optional[Message]:
        return flip_bitlike_fields(message)


class EquivocateStrategy(ByzantineStrategy):
    """Tell half the peers the truth and the other half the opposite.

    Splits honest views without ever being unanimous — the classic
    equivocation stressor for threshold-based decision rules.
    """

    name = "equivocate"

    def corrupt(self, message: Message, destination: int,
                pid: int) -> Optional[Message]:
        if destination % 2 == 0:
            return message
        return flip_bitlike_fields(message)


class SelectiveSilenceStrategy(ByzantineStrategy):
    """Answer only low-ID peers; starve the rest.

    Combines truthful participation (so the attacker is never
    blacklisted by the peers it serves) with targeted omission.
    """

    name = "selective-silence"

    def __init__(self, serve_below: Optional[int] = None) -> None:
        self.serve_below = serve_below

    def corrupt(self, message: Message, destination: int,
                pid: int) -> Optional[Message]:
        # Default: serve only peers with a smaller ID than the attacker.
        threshold = self.serve_below if self.serve_below is not None else pid
        return message if destination < threshold else None


class _CorruptingNetworkProxy:
    """Stands in for the real network inside a corrupted peer's env."""

    def __init__(self, network, strategy: ByzantineStrategy, pid: int) -> None:
        self._network = network
        self._strategy = strategy
        self._pid = pid

    @property
    def kernel(self):
        return self._network.kernel

    def send(self, sender_pid: int, destination: int, message: Message,
             *, sender_cycle: int = 0, honest: bool = True) -> bool:
        corrupted = self._strategy.corrupt(message, destination, self._pid)
        telemetry = self._network.telemetry
        if telemetry is not None and corrupted is not message:
            telemetry.emit("corrupt", {
                "t": self._network.kernel.now, "peer": self._pid,
                "dst": destination, "type": type(message).__name__,
                "action": "drop" if corrupted is None else "rewrite"})
        if corrupted is None:
            return True  # silently dropped by the attacker
        return self._network.send(sender_pid, destination, corrupted,
                                  sender_cycle=sender_cycle, honest=False)

    def deliver_direct(self, destination: int, message: Message,
                       latency) -> None:
        self._network.deliver_direct(destination, message, latency)


class ScriptedByzantinePeer(Process):
    """Base for fully custom attacker processes.

    Subclasses get the corrupted peer's ``pid`` and the real ``env``
    and may send arbitrary messages via :meth:`inject`.  They are
    non-essential: an attacker parked forever does not deadlock a run.
    """

    def __init__(self, pid: int, env: SimEnv) -> None:
        super().__init__(name=f"byzantine-{pid}")
        self.pid = pid
        self.env = env
        self.essential = False
        self.inbox: list[Message] = []
        self.output = None

    def deliver(self, message: Message) -> None:
        self.inbox.append(message)
        self.env.kernel.notify(self)

    def inject(self, destination: int, message: Message) -> None:
        """Send an arbitrary message (uncharged, unlimited size)."""
        self.env.network.send(self.pid, destination, message, honest=False)

    def inject_all(self, message: Message) -> None:
        """Send ``message`` to every other peer."""
        for destination in self.env.peer_ids:
            if destination != self.pid:
                self.inject(destination, message)

    def body(self) -> Iterator[WaitUntil]:  # pragma: no cover - abstract
        raise NotImplementedError


class ByzantineAdversary(Adversary):
    """Corrupts a seeded or explicit peer set with a chosen strategy.

    Args:
        fraction: corrupt ``floor(fraction * n)`` seeded-random peers
            (exclusive with ``corrupted``).
        corrupted: explicit set of peer IDs to corrupt.
        strategy_factory: builds one :class:`ByzantineStrategy` per
            corrupted peer (default: :class:`WrongBitsStrategy`).
        scripted_factory: if given, corrupted peers run this custom
            process instead of the wrapped honest execution.
    """

    def __init__(self, *, fraction: Optional[float] = None,
                 corrupted: Optional[set[int]] = None,
                 strategy_factory: Callable[[int], ByzantineStrategy] = None,
                 scripted_factory: Optional[
                     Callable[[int, SimEnv], ScriptedByzantinePeer]] = None
                 ) -> None:
        super().__init__()
        if (fraction is None) == (corrupted is None):
            raise ValueError("pass exactly one of fraction= or corrupted=")
        if fraction is not None:
            check_fraction("fraction", fraction, inclusive_high=False)
        self.fraction = fraction
        self._explicit = set(corrupted) if corrupted is not None else None
        self.strategy_factory = strategy_factory or (
            lambda pid: WrongBitsStrategy())
        self.scripted_factory = scripted_factory
        self.corrupted: set[int] = set()
        self.strategies: dict[int, ByzantineStrategy] = {}

    def fault_budget(self, n: int) -> int:
        if self._explicit is not None:
            return len(self._explicit)
        return int(math.floor(self.fraction * n))

    def on_bind(self) -> None:
        if self._explicit is not None:
            for pid in self._explicit:
                if not 0 <= pid < self.env.n:
                    raise ValueError(f"corruption plan names unknown peer {pid}")
            self.corrupted = set(self._explicit)
        else:
            count = self.fault_budget(self.env.n)
            self.corrupted = set(self.rng.sample(range(self.env.n), count))

    def faulty_peers(self) -> set[int]:
        return set(self.corrupted)

    def make_faulty_peer(self, pid: int, env: SimEnv,
                         honest_factory: PeerFactory) -> Process:
        if self.scripted_factory is not None:
            return self.scripted_factory(pid, env)
        strategy = self.strategy_factory(pid)
        self.strategies[pid] = strategy
        proxy = _CorruptingNetworkProxy(env.network, strategy, pid)
        corrupted_env = dataclasses.replace(env, network=proxy)
        peer = honest_factory(pid, corrupted_env)
        peer.name = f"byzantine-{pid}({strategy.name})"
        peer.essential = False
        return peer
