"""The Dynamic Byzantine adversary (the companion paper's model).

The target paper's companion results (referenced as [4], *"Distributed
Download from an External Data Source in Byzantine Majority Settings"*)
analyze a **Dynamic Byzantine** adversary: the set of corrupted peers
may *change from one cycle to the next*, subject only to the per-cycle
budget ``|B_c| <= t``.  Over a long execution the *union* of corrupted
peers can exceed ``t`` — even reach all of ``n`` — which breaks any
defence that relies on pinning a fixed culprit set, and is exactly the
regime where the frequency-threshold + decision-tree machinery shines:
it never identifies anyone, it only prices lies.

Semantics implemented here (matching the model):

- a peer's *computation* is always honest; while corrupted, its
  *outgoing messages* are rewritten (or eaten) by a corruption
  strategy — the classic "mobile virus" reading of dynamic faults;
- corruption is decided per ``(peer, cycle)`` from the adversary's own
  seed — never from message content, preserving the cycle restriction;
- because every peer computes honestly, the Download guarantee is
  demanded of **all** peers: :meth:`actually_faulty` is empty.

Two selection disciplines:

- ``pool=None`` (default): each cycle's corrupted set is drawn freshly
  from all ``n`` peers — the union grows without bound;
- ``pool=k``: per-cycle sets are drawn from a fixed seeded pool of
  ``k`` peers (useful to compare against the static adversary with the
  same blast radius).

In the *Dynamic Byzantine with Broadcast* variant (also from the
companion paper) a corrupted peer must still send the *same* message to
every recipient in a cycle; pass ``broadcast_consistent=True`` to
enforce it (the per-destination corruption is then keyed on the cycle
only, so all recipients see one consistent lie).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.adversary.base import Adversary
from repro.adversary.byzantine import ByzantineStrategy, WrongBitsStrategy
from repro.sim.messages import Message
from repro.util.rng import derive_seed
from repro.util.validation import check_fraction


class DynamicByzantineAdversary(Adversary):
    """Per-cycle changing corruption of outgoing messages."""

    def __init__(self, *, fraction: float,
                 strategy_factory: Optional[
                     Callable[[int], ByzantineStrategy]] = None,
                 pool: Optional[int] = None,
                 broadcast_consistent: bool = False) -> None:
        super().__init__()
        check_fraction("fraction", fraction, inclusive_high=False)
        self.fraction = fraction
        self.strategy_factory = strategy_factory or (
            lambda pid: WrongBitsStrategy())
        self.pool_size = pool
        self.broadcast_consistent = broadcast_consistent
        self._pool: Optional[list[int]] = None
        self._strategies: dict[int, ByzantineStrategy] = {}
        self._corrupted_cache: dict[int, frozenset[int]] = {}
        self.cycles_seen: set[int] = set()

    # The dynamic adversary corrupts messages, not peers: every peer
    # remains obligated to terminate correctly, and the per-cycle
    # budget is what the protocols' thresholds must absorb.
    def fault_budget(self, n: int) -> int:
        return int(math.floor(self.fraction * n))

    def faulty_peers(self) -> set[int]:
        return set()

    def actually_faulty(self) -> set[int]:
        return set()

    # -- per-cycle corruption sets -------------------------------------------

    def _candidates(self) -> list[int]:
        if self.pool_size is None:
            return list(range(self.env.n))
        if self._pool is None:
            self._pool = self.rng.sample(range(self.env.n),
                                         min(self.pool_size, self.env.n))
        return self._pool

    def corrupted_in_cycle(self, cycle: int) -> frozenset[int]:
        """The corrupted set for ``cycle`` (seeded, content-independent)."""
        cached = self._corrupted_cache.get(cycle)
        if cached is not None:
            return cached
        candidates = self._candidates()
        budget = min(self.fault_budget(self.env.n), len(candidates))
        # Hash-based selection keyed on (seed, cycle): independent of
        # the order in which cycles are first observed.
        scored = sorted(
            candidates,
            key=lambda pid: derive_seed(self.rng.seed,
                                        f"dyn-{cycle}-{pid}"))
        corrupted = frozenset(scored[:budget])
        self._corrupted_cache[cycle] = corrupted
        return corrupted

    def union_corrupted(self) -> set[int]:
        """Every peer corrupted in any observed cycle (diagnostics)."""
        union: set[int] = set()
        for cycle in self.cycles_seen:
            union |= self.corrupted_in_cycle(cycle)
        return union

    # -- the message hook --------------------------------------------------------

    def transform_message(self, sender: int, destination: int,
                          message: Message, now: float, cycle: int):
        self.cycles_seen.add(cycle)
        if sender not in self.corrupted_in_cycle(cycle):
            return message
        strategy = self._strategies.get(sender)
        if strategy is None:
            strategy = self.strategy_factory(sender)
            self._strategies[sender] = strategy
        target = 0 if self.broadcast_consistent else destination
        return strategy.corrupt(message, target, sender)
