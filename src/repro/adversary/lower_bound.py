"""The witness adversary of Theorems 3.1 and 3.2.

Both lower-bound proofs use the same strategy against a protocol that
(supposedly) tolerates ``beta >= 1/2`` Byzantine faults while querying
fewer than ``ell`` bits:

- corrupt a majority ``F`` of the peers and make them run the honest
  protocol *as if the input were* some reference array ``X`` (all
  zeros) — implemented by executing the real protocol code against a
  private fake source;
- withhold every message sent by the remaining honest peers (other
  than the victim ``v``) until the victim has terminated — legal
  because delays only need to be finite, and the model only compels
  release at quiescence;
- choose the real input ``X'`` to differ from ``X`` in a single bit
  the victim does not query.

The victim's view is then identical in the execution on ``X`` (where
``F`` would be honest and the protocol must answer ``X``) and the
execution on ``X'`` — so it outputs the wrong bit.  The drivers in
:mod:`repro.lowerbounds` assemble the two executions and verify the
indistinguishability; this module provides the adversary itself.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.adversary.base import Adversary, PeerFactory
from repro.sim.messages import SOURCE_ID, Message, SourceResponse
from repro.sim.network import WITHHOLD
from repro.sim.peer import SimEnv
from repro.sim.process import Process
from repro.util.bitarrays import BitArray
from repro.util.rng import SplittableRNG


class _FakeSource:
    """A corrupted peer's private view of the data source.

    Serves queries from the adversary's reference array ``X`` instead
    of the real input, with the same asynchronous response mechanics.
    Queries against it are *not* charged (Byzantine peers' costs do not
    count), and crucially never touch the real source's query log.
    """

    def __init__(self, data: BitArray, env: SimEnv) -> None:
        self.data = data
        self.env = env

    def __len__(self) -> int:
        return len(self.data)

    def request_bits(self, pid: int, request_id: int, indices) -> None:
        values = {index: self.data[index] for index in set(indices)}
        response = SourceResponse(sender=SOURCE_ID, request_id=request_id,
                                  values=values)
        latency = self.env.adversary.query_latency(pid, self.env.kernel.now)
        self.env.network.deliver_direct(pid, response, latency)

    def request_segment(self, pid: int, request_id: int,
                        lo: int, hi: int) -> None:
        self.request_bits(pid, request_id, range(lo, hi))


class MajoritySimulationAdversary(Adversary):
    """Corrupt a majority to fake execution on a reference input, and
    starve the victim of every other honest voice.

    Args:
        corrupted: the majority set ``F`` (runs honest code on
            ``fake_input``).
        silenced: honest peers whose outgoing messages are withheld
            until quiescence (i.e., until after the victim terminates,
            if the attack succeeds).
        fake_input: the reference array ``X`` the corrupted peers
            pretend to read.
        rho_seed: if given, all corrupted peers draw their coins from
            this seed instead of the run's — the adversary "sets the
            random string rho" exactly as in Theorem 3.2's proof, so
            the simulated execution is identical across victim-coin
            samples.
    """

    def __init__(self, *, corrupted: set[int], silenced: set[int],
                 fake_input: BitArray,
                 rho_seed: Optional[int] = None) -> None:
        super().__init__()
        overlap = corrupted & silenced
        if overlap:
            raise ValueError(f"peers {sorted(overlap)} are both corrupted "
                             f"and silenced")
        self.corrupted = set(corrupted)
        self.silenced = set(silenced)
        self.fake_input = fake_input
        self.rho_seed = rho_seed

    def fault_budget(self, n: int) -> int:
        return len(self.corrupted)

    def faulty_peers(self) -> set[int]:
        return set(self.corrupted)

    def make_faulty_peer(self, pid: int, env: SimEnv,
                         honest_factory: PeerFactory) -> Process:
        fake_env = dataclasses.replace(
            env, source=_FakeSource(self.fake_input, env))
        if self.rho_seed is not None:
            fake_env = dataclasses.replace(
                fake_env, rng=SplittableRNG(self.rho_seed))
        peer = honest_factory(pid, fake_env)
        peer.name = f"byzantine-{pid}(simulating-honest)"
        peer.essential = False
        return peer

    def after_setup(self, processes: dict[int, Process]) -> None:
        # The silenced peers are honest, but with a corrupted majority
        # the protocol owes them nothing — they may be unable to ever
        # terminate.  The drivers only assert on the victim, so the
        # silenced peers must not count as a deadlock when they (quite
        # correctly) wait forever after the attack has succeeded.
        for pid in self.silenced:
            processes[pid].essential = False

    def message_latency(self, sender: int, destination: int, message: Message,
                        now: float, cycle: int):
        if sender in self.silenced:
            return WITHHOLD
        return 1.0
