"""Executable construction for Theorem 3.1 (deterministic lower bound).

Theorem 3.1: for ``beta >= 1/2``, every deterministic asynchronous
Download protocol resilient to Byzantine faults has query complexity
``ell`` — i.e., the naive protocol is the only one.

The proof is a two-execution indistinguishability argument; this module
runs it for real against any concrete protocol:

1. **Discovery execution** — input all zeros; the majority ``F`` runs
   honestly, the other honest peers are withheld; the victim terminates
   (if it cannot, the adversary abandons — reported as such).  Record
   the set of bits the victim queried and pick a target ``b*`` outside
   it (if the victim queried everything, the protocol respects the
   bound and there is nothing to attack).
2. **Attack execution** — input all zeros except ``X'[b*] = 1``; the
   corrupted majority *simulates* the discovery execution (honest code
   over a fake all-zeros source); the victim, seeing an identical
   view, terminates with the all-zeros output — wrong at ``b*``.

For a deterministic protocol the two executions agree bit-for-bit from
the victim's perspective, which the driver verifies (same query set,
same termination, wrong output).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.adversary.lower_bound import MajoritySimulationAdversary
from repro.sim.runner import RunResult, Simulation
from repro.util.bitarrays import BitArray


@dataclass
class DeterministicLowerBoundOutcome:
    """What the Theorem 3.1 construction produced for one protocol."""

    n: int
    ell: int
    corrupted: set[int]
    silenced: set[int]
    victim: int
    victim_queries: int
    target_bit: Optional[int]
    fooled: bool
    victim_terminated: bool
    discovery: RunResult
    attack: Optional[RunResult]

    @property
    def respects_bound(self) -> bool:
        """True when the protocol escaped only by querying everything."""
        return self.target_bit is None and self.victim_queries >= self.ell


def majority_split(n: int) -> tuple[int, set[int], set[int]]:
    """The construction's cast: victim 0, corrupted majority, silenced rest.

    The corrupted set must be large enough that the victim's
    "wait for n - t peers" steps are satisfiable by ``F + {victim}``:
    ``|F| = ceil(n / 2)`` does it for ``t = |F|``.
    """
    corrupted_count = math.ceil(n / 2)
    corrupted = set(range(n - corrupted_count, n))
    victim = 0
    silenced = set(range(n)) - corrupted - {victim}
    return victim, corrupted, silenced


def run_deterministic_construction(
        *, peer_factory, n: int, ell: int, seed: int = 0,
        claimed_t: Optional[int] = None) -> DeterministicLowerBoundOutcome:
    """Run the Theorem 3.1 attack against ``peer_factory``.

    ``claimed_t`` is the fault budget the protocol is *told* (its wait
    thresholds use it); the adversary corrupts ``ceil(n/2)`` peers
    regardless — the theorem's regime is exactly the one where such a
    majority fits the declared ``beta >= 1/2``.
    """
    victim, corrupted, silenced = majority_split(n)
    if claimed_t is None:
        claimed_t = len(corrupted)
    zeros = BitArray.zeros(ell)

    # ---- execution 1: discovery (real input = reference input) ----
    discovery_adversary = MajoritySimulationAdversary(
        corrupted=corrupted, silenced=silenced, fake_input=zeros.copy())
    discovery = Simulation(
        n=n, data=zeros.copy(), peer_factory=peer_factory, t=claimed_t,
        adversary=discovery_adversary, seed=seed,
        allow_fault_overrun=True).run()
    victim_queried = discovery.queried_indices.get(victim, set())
    victim_terminated = discovery.statuses[victim].terminated
    target = next((bit for bit in range(ell) if bit not in victim_queried),
                  None)
    if target is None or not victim_terminated:
        return DeterministicLowerBoundOutcome(
            n=n, ell=ell, corrupted=corrupted, silenced=silenced,
            victim=victim, victim_queries=len(victim_queried),
            target_bit=None, fooled=False,
            victim_terminated=victim_terminated,
            discovery=discovery, attack=None)

    # ---- execution 2: attack (input flipped at the unqueried bit) ----
    flipped = zeros.copy()
    flipped[target] = 1
    attack_adversary = MajoritySimulationAdversary(
        corrupted=corrupted, silenced=silenced, fake_input=zeros.copy())
    attack = Simulation(
        n=n, data=flipped, peer_factory=peer_factory, t=claimed_t,
        adversary=attack_adversary, seed=seed,
        allow_fault_overrun=True).run()

    victim_output = attack.outputs.get(victim)
    fooled = (attack.statuses[victim].terminated
              and victim_output is not None
              and victim_output[target] != flipped[target])
    return DeterministicLowerBoundOutcome(
        n=n, ell=ell, corrupted=corrupted, silenced=silenced, victim=victim,
        victim_queries=len(victim_queried), target_bit=target, fooled=fooled,
        victim_terminated=attack.statuses[victim].terminated,
        discovery=discovery, attack=attack)
