"""Executable construction for Theorem 3.2 (randomized lower bound).

Theorem 3.2: for ``beta >= 1/2``, any randomized asynchronous Download
protocol has executions in which some peer queries more than a constant
fraction of ``ell`` bits — randomization does not rescue the Byzantine
majority regime (unlike in the synchronous model).

The proof's adversary cannot see the victim's coins, so it attacks the
victim's *query distribution*:

1. estimate ``q_i`` — the probability that the victim queries bit
   ``i`` — by running the reference execution over many victim-coin
   samples (the corrupted majority's coins ``rho`` are fixed by the
   adversary, exactly as in the proof);
2. pick the target ``i*`` with minimal ``q_i`` (the proof picks
   proportionally to ``1 - q_i`` and Cauchy–Schwarz-bounds the hit
   probability by ``Q / ell``; the argmin choice only strengthens the
   witness);
3. run the attack execution (input flipped at ``i*``, majority
   simulating all-zeros) over fresh victim coins and measure how often
   the victim terminates with the wrong bit.

For a protocol whose victim queries ``Q`` bits on average, the measured
fooling rate should be at least about ``1 - Q / ell`` — the driver
returns both numbers so tests and benches can compare.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.adversary.lower_bound import MajoritySimulationAdversary
from repro.lowerbounds.deterministic import majority_split
from repro.sim.runner import Simulation
from repro.util.bitarrays import BitArray
from repro.util.rng import derive_seed


@dataclass
class RandomizedLowerBoundReport:
    """Measured outcome of the Theorem 3.2 construction."""

    n: int
    ell: int
    target_bit: int
    estimated_hit_probability: float
    mean_victim_queries: float
    attack_trials: int
    fooled_trials: int
    abandoned_trials: int

    @property
    def fooling_rate(self) -> float:
        """Fraction of attack executions in which the victim output the
        wrong bit."""
        return self.fooled_trials / self.attack_trials

    @property
    def theoretical_floor(self) -> float:
        """The proof's lower bound on the fooling rate:
        ``1 - mean_Q / ell`` (up to quiescence abandonments)."""
        return max(0.0, 1.0 - self.mean_victim_queries / self.ell)


def run_randomized_construction(
        *, peer_factory, n: int, ell: int, claimed_t: int,
        estimation_trials: int = 20, attack_trials: int = 20,
        base_seed: int = 0,
        rho_seed: int = 1_234_567) -> RandomizedLowerBoundReport:
    """Run the Theorem 3.2 attack and measure the fooling rate."""
    victim, corrupted, silenced = majority_split(n)
    zeros = BitArray.zeros(ell)

    # ---- step 1: estimate the victim's query distribution ----
    hit_counts: Counter = Counter()
    total_queries = 0
    for trial in range(estimation_trials):
        adversary = MajoritySimulationAdversary(
            corrupted=corrupted, silenced=silenced,
            fake_input=zeros.copy(), rho_seed=rho_seed)
        run = Simulation(
            n=n, data=zeros.copy(), peer_factory=peer_factory, t=claimed_t,
            adversary=adversary,
            seed=derive_seed(base_seed, f"estimate-{trial}"),
            allow_fault_overrun=True).run()
        queried = run.queried_indices.get(victim, set())
        total_queries += len(queried)
        hit_counts.update(queried)

    # ---- step 2: choose the least-likely-queried bit ----
    target = min(range(ell), key=lambda bit: (hit_counts[bit], bit))
    estimated_hit = hit_counts[target] / estimation_trials

    # ---- step 3: attack with fresh victim coins ----
    flipped = zeros.copy()
    flipped[target] = 1
    fooled = 0
    abandoned = 0
    for trial in range(attack_trials):
        adversary = MajoritySimulationAdversary(
            corrupted=corrupted, silenced=silenced,
            fake_input=zeros.copy(), rho_seed=rho_seed)
        run = Simulation(
            n=n, data=flipped.copy(), peer_factory=peer_factory,
            t=claimed_t, adversary=adversary,
            seed=derive_seed(base_seed, f"attack-{trial}"),
            allow_fault_overrun=True).run()
        status = run.statuses[victim]
        output = run.outputs.get(victim)
        if not status.terminated or output is None:
            abandoned += 1  # quiescence reached first; adversary gives up
        elif output[target] != 1:
            fooled += 1
    return RandomizedLowerBoundReport(
        n=n, ell=ell, target_bit=target,
        estimated_hit_probability=estimated_hit,
        mean_victim_queries=total_queries / estimation_trials,
        attack_trials=attack_trials, fooled_trials=fooled,
        abandoned_trials=abandoned)
