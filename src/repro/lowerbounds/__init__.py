"""Executable lower-bound constructions (Theorems 3.1 and 3.2).

A lower bound needs only one witness adversary; these modules implement
the paper's witnesses and *run* them against concrete protocols:

- :mod:`~repro.lowerbounds.deterministic` — Theorem 3.1's
  two-execution indistinguishability argument (``beta >= 1/2`` forces
  deterministic query complexity ``ell``);
- :mod:`~repro.lowerbounds.randomized` — Theorem 3.2's
  query-distribution attack (randomization does not help either);
- :mod:`~repro.lowerbounds.accounting` — query-set extraction and
  view-indistinguishability checks.
"""

from repro.lowerbounds.accounting import (
    query_load_profile,
    unqueried_bits,
    victim_views_identical,
)
from repro.lowerbounds.deterministic import (
    DeterministicLowerBoundOutcome,
    majority_split,
    run_deterministic_construction,
)
from repro.lowerbounds.randomized import (
    RandomizedLowerBoundReport,
    run_randomized_construction,
)

__all__ = [
    "DeterministicLowerBoundOutcome",
    "RandomizedLowerBoundReport",
    "majority_split",
    "query_load_profile",
    "run_deterministic_construction",
    "run_randomized_construction",
    "unqueried_bits",
    "victim_views_identical",
]
