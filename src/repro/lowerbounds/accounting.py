"""Per-execution query accounting shared by the lower-bound drivers."""

from __future__ import annotations

from repro.sim.runner import RunResult


def unqueried_bits(run: RunResult, pid: int, ell: int) -> list[int]:
    """Bit positions ``pid`` never queried in ``run``."""
    queried = run.queried_indices.get(pid, set())
    return [bit for bit in range(ell) if bit not in queried]


def victim_views_identical(first: RunResult, second: RunResult,
                           victim: int) -> bool:
    """Indistinguishability check from the victim's perspective.

    For the deterministic construction the victim must behave
    identically in the discovery and attack executions: same query
    set, same termination status, same output.  (Message transcripts
    are implied by these for a deterministic protocol; the query set is
    the part the proof pivots on.)
    """
    queries_match = (first.queried_indices.get(victim, set())
                     == second.queried_indices.get(victim, set()))
    termination_match = (first.statuses[victim].terminated
                         == second.statuses[victim].terminated)
    outputs_match = first.outputs.get(victim) == second.outputs.get(victim)
    return queries_match and termination_match and outputs_match


def query_load_profile(run: RunResult) -> dict[int, int]:
    """Per-peer distinct-position query counts for one run."""
    return {pid: len(indices)
            for pid, indices in sorted(run.queried_indices.items())}
