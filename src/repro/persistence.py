"""JSON persistence for run summaries and experiment outcomes.

Benchmark campaigns outlive Python processes; this module gives the
measurable artifacts a stable on-disk form:

- :func:`report_to_dict` / :func:`report_from_dict` — complexity
  reports;
- :func:`summarize_run` — a :class:`~repro.sim.runner.RunResult`
  reduced to its JSON-safe measurements (outputs and traces are
  deliberately dropped: persist measurements, not transcripts);
- :func:`save_outcomes` / :func:`load_outcomes` — experiment-outcome
  collections (:mod:`repro.experiments`), round-trippable.

Everything is plain ``json`` — no pickle, so files are diffable,
greppable, and safe to load from untrusted sources.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, Union

from repro.experiments import ExperimentOutcome, ExperimentSpec
from repro.sim.metrics import ComplexityReport
from repro.sim.runner import RunResult

PathLike = Union[str, Path]

#: Format tag written into every file; bump on incompatible changes.
SCHEMA_VERSION = 1


def report_to_dict(report: ComplexityReport) -> dict:
    """JSON-safe form of a complexity report."""
    return {
        "query_complexity": report.query_complexity,
        "total_query_bits": report.total_query_bits,
        "message_complexity": report.message_complexity,
        "message_bits": report.message_bits,
        "time_complexity": report.time_complexity,
        "per_peer_query_bits": {str(pid): bits for pid, bits
                                in report.per_peer_query_bits.items()},
        "per_peer_messages": {str(pid): count for pid, count
                              in report.per_peer_messages.items()},
    }


def report_from_dict(payload: dict) -> ComplexityReport:
    """Inverse of :func:`report_to_dict`."""
    return ComplexityReport(
        query_complexity=payload["query_complexity"],
        total_query_bits=payload["total_query_bits"],
        message_complexity=payload["message_complexity"],
        message_bits=payload["message_bits"],
        time_complexity=payload["time_complexity"],
        per_peer_query_bits={int(pid): bits for pid, bits
                             in payload["per_peer_query_bits"].items()},
        per_peer_messages={int(pid): count for pid, count
                           in payload["per_peer_messages"].items()},
    )


def summarize_run(result: RunResult) -> dict:
    """The measurements of one run, JSON-safe."""
    return {
        "schema": SCHEMA_VERSION,
        "ell": len(result.data),
        "honest": sorted(result.honest),
        "faulty": sorted(result.faulty),
        "download_correct": result.download_correct,
        "events_processed": result.events_processed,
        "elapsed_virtual_time": result.elapsed_virtual_time,
        "report": report_to_dict(result.report),
    }


def outcome_to_dict(outcome: ExperimentOutcome) -> dict:
    """JSON-safe form of one experiment outcome (spec included)."""
    spec = dataclasses.asdict(outcome.spec)
    return {
        "spec": spec,
        "runs": outcome.runs,
        "correct_runs": outcome.correct_runs,
        "mean_query_complexity": outcome.mean_query_complexity,
        "max_query_complexity": outcome.max_query_complexity,
        "mean_message_complexity": outcome.mean_message_complexity,
        "mean_time_complexity": outcome.mean_time_complexity,
        "failed_runs": outcome.failed_runs,
        "failures": [dataclasses.asdict(failure)
                     for failure in outcome.failures],
        "mean_round_complexity": outcome.mean_round_complexity,
    }


def outcome_from_dict(payload: dict) -> ExperimentOutcome:
    """Inverse of :func:`outcome_to_dict`.

    Files written before the resilience layer lack the failure fields;
    they load as fully-successful outcomes (which they were).
    """
    from repro.execution.retry import TaskFailure
    return ExperimentOutcome(
        spec=ExperimentSpec(**payload["spec"]),
        runs=payload["runs"],
        correct_runs=payload["correct_runs"],
        mean_query_complexity=payload["mean_query_complexity"],
        max_query_complexity=payload["max_query_complexity"],
        mean_message_complexity=payload["mean_message_complexity"],
        mean_time_complexity=payload["mean_time_complexity"],
        failed_runs=payload.get("failed_runs", 0),
        failures=tuple(TaskFailure(**failure)
                       for failure in payload.get("failures", ())),
        mean_round_complexity=payload.get("mean_round_complexity"),
    )


def save_outcomes(outcomes: Iterable[ExperimentOutcome],
                  path: PathLike) -> None:
    """Write an outcome collection to ``path`` as JSON."""
    payload = {
        "schema": SCHEMA_VERSION,
        "outcomes": [outcome_to_dict(outcome) for outcome in outcomes],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True),
                          encoding="utf-8")


def load_outcomes(path: PathLike) -> list[ExperimentOutcome]:
    """Read an outcome collection written by :func:`save_outcomes`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {schema!r} in {path} "
            f"(this build reads {SCHEMA_VERSION})")
    return [outcome_from_dict(item) for item in payload["outcomes"]]
